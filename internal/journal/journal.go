// Package journal is an append-only, fsynced write-ahead journal for the
// design service's job lifecycle. Every submission is recorded — with the
// canonical request bytes needed to re-create the work — before the job
// id is returned to a client, and every start and terminal transition is
// appended behind it, so a SIGKILLed daemon can replay the journal on
// restart and give an honest answer for every pre-crash job id instead of
// a 404 (or, opt-in, re-enqueue the interrupted work).
//
// Records are length-prefixed and CRC-32C checksummed (see codec.go): a
// torn tail — the half-written record a crash mid-append leaves behind —
// is detected and truncated cleanly on the next open instead of poisoning
// replay. The journal rotates to a fresh segment once the current one
// exceeds SegmentBytes, and rotation compacts: only jobs still live
// (queued or running) are carried into the new segment, completed
// lifecycles are dropped, and older segments are deleted. Steady-state
// journal size is therefore bounded by the live job set, not by history.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/obslog"
)

// Event types, in lifecycle order.
const (
	// EventSubmitted records a job entering the queue, with everything a
	// restarted daemon needs to re-create it: the canonical request bytes,
	// the endpoint path, the cache key, and the idempotency key.
	EventSubmitted = "submitted"
	// EventStarted records a worker picking the job up.
	EventStarted = "started"
	// EventFinished records a terminal success or failure (ErrorKind
	// carries the failure taxonomy; "" or "degraded" means the job is done
	// with a usable result).
	EventFinished = "finished"
	// EventCanceled records a terminal cancellation (client cancel or
	// deadline expiry; ErrorKind distinguishes the two).
	EventCanceled = "canceled"
)

// Event is one journal record.
type Event struct {
	Type  string `json:"type"`
	JobID string `json:"job_id"`
	// Submission payload (EventSubmitted only).
	Kind      string `json:"kind,omitempty"`
	Path      string `json:"path,omitempty"`
	Body      []byte `json:"body,omitempty"`
	Key       string `json:"key,omitempty"`
	RequestID string `json:"request_id,omitempty"`
	IdemKey   string `json:"idempotency_key,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	// ErrorKind is the terminal failure taxonomy (EventFinished and
	// EventCanceled).
	ErrorKind string    `json:"error_kind,omitempty"`
	Time      time.Time `json:"time"`
}

// Job lifecycle states a replayed record can be in. Queued and Running
// are the non-terminal states a crash strands jobs in.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobRecord is the replayed view of one job: its submission event plus
// the furthest lifecycle state the journal witnessed.
type JobRecord struct {
	Submitted Event
	State     string
	ErrorKind string
}

// Terminal reports whether the job reached a terminal state before the
// journal ended (such jobs need no recovery).
func (r *JobRecord) Terminal() bool {
	return r.State == StateDone || r.State == StateFailed || r.State == StateCanceled
}

// Options tunes a Journal.
type Options struct {
	// SegmentBytes is the rotation threshold (default 4 MiB).
	SegmentBytes int64
	// NoSync disables the per-append fsync (tests and benchmarks only —
	// without it a crash can lose acknowledged events).
	NoSync bool
	// Tracer receives journal metrics (nil-safe).
	Tracer *obs.Tracer
	// Logger receives structured damage/rotation logs (nil disables).
	Logger *obslog.Logger
}

// Journal is the write-ahead job-lifecycle journal. All methods are safe
// for concurrent use.
type Journal struct {
	dir  string
	opts Options
	log  *obslog.Logger

	mu     sync.Mutex
	f      *os.File
	seg    int
	size   int64
	closed bool
	// live tracks non-terminal jobs for compaction, in submission order.
	live      map[string]*JobRecord
	liveOrder []string

	recovered []JobRecord

	appends, rotations, truncations, replaySkipped *obs.Counter
	segments                                       *obs.Gauge
}

const (
	segPrefix          = "wal-"
	segSuffix          = ".log"
	defaultSegmentSize = 4 << 20
)

func segName(n int) string { return fmt.Sprintf("%s%08d%s", segPrefix, n, segSuffix) }

// Open opens (creating if needed) a journal rooted at dir, replays every
// existing segment into the recovered job table (truncating a torn tail),
// and readies the newest segment for appends.
func Open(dir string, opts Options) (*Journal, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	tr := opts.Tracer
	j := &Journal{
		dir:           dir,
		opts:          opts,
		log:           opts.Logger,
		live:          map[string]*JobRecord{},
		appends:       tr.Counter("journal/appends_total"),
		rotations:     tr.Counter("journal/rotations_total"),
		truncations:   tr.Counter("journal/torn_tails_truncated_total"),
		replaySkipped: tr.Counter("journal/replay_skipped_total"),
		segments:      tr.Gauge("journal/segments"),
	}
	segs, err := j.listSegments()
	if err != nil {
		return nil, err
	}
	table := map[string]*JobRecord{}
	var order []string
	for i, n := range segs {
		last := i == len(segs)-1
		if err := j.replaySegment(filepath.Join(dir, segName(n)), last, table, &order); err != nil {
			return nil, err
		}
	}
	j.recovered = make([]JobRecord, 0, len(order))
	for _, id := range order {
		rec := table[id]
		j.recovered = append(j.recovered, *rec)
		if !rec.Terminal() {
			cp := *rec
			j.live[id] = &cp
			j.liveOrder = append(j.liveOrder, id)
		}
	}
	j.seg = 1
	if len(segs) > 0 {
		j.seg = segs[len(segs)-1]
	}
	p := filepath.Join(dir, segName(j.seg))
	f, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.f, j.size = f, st.Size()
	j.segments.Set(1)
	if len(segs) == 0 {
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// listSegments returns the segment numbers present in dir, ascending.
func (j *Journal) listSegments() ([]int, error) {
	ents, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var segs []int
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix))
		if err != nil || n <= 0 {
			continue
		}
		segs = append(segs, n)
	}
	sort.Ints(segs)
	return segs, nil
}

// replaySegment reads one segment into the job table. Damage handling:
// a torn or corrupt record ends the segment's replay — everything before
// it stands — and when the segment is the newest one (the only segment
// still being appended to) the file is truncated back to the last good
// record so the next append starts from a clean boundary. The
// journal.replay fault point models an unreadable-but-framed record: the
// record is skipped (counted), replay continues.
func (j *Journal) replaySegment(path string, last bool, table map[string]*JobRecord, order *[]string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var good int64
	for {
		payload, err := readRecord(br)
		if err != nil {
			if err == io.EOF {
				break
			}
			// Damaged record: log, optionally truncate, stop this segment.
			j.log.Warn("journal_damaged_record",
				obslog.F("segment", filepath.Base(path)),
				obslog.F("offset", good),
				obslog.F("error", err.Error()))
			if last {
				if terr := os.Truncate(path, good); terr != nil {
					return fmt.Errorf("journal: truncating torn tail: %w", terr)
				}
				j.truncations.Inc()
			}
			break
		}
		good += int64(recordHeaderLen + len(payload))
		if ferr := faults.Fail("journal.replay"); ferr != nil {
			j.replaySkipped.Inc()
			j.log.Warn("journal_replay_record_skipped",
				obslog.F("segment", filepath.Base(path)),
				obslog.F("error", ferr.Error()))
			continue
		}
		var ev Event
		if err := json.Unmarshal(payload, &ev); err != nil {
			// The frame verified but the payload doesn't decode: skip it
			// (a frame-level checksum can't vouch for what we wrote).
			j.replaySkipped.Inc()
			continue
		}
		applyEvent(table, order, &ev)
	}
	return nil
}

// applyEvent advances the replay state machine for one event. Duplicate
// submitted/started events (rotation compaction re-writes live jobs) are
// idempotent, and nothing ever moves a job out of a terminal state.
func applyEvent(table map[string]*JobRecord, order *[]string, ev *Event) {
	rec, ok := table[ev.JobID]
	if !ok {
		if ev.Type != EventSubmitted {
			// A lifecycle event for a job whose submission we never saw
			// (lost to a skipped record): synthesize a stub so terminal
			// events still record honestly.
			rec = &JobRecord{Submitted: Event{Type: EventSubmitted, JobID: ev.JobID}, State: StateQueued}
		} else {
			rec = &JobRecord{State: StateQueued}
		}
		table[ev.JobID] = rec
		*order = append(*order, ev.JobID)
	}
	switch ev.Type {
	case EventSubmitted:
		rec.Submitted = *ev
		if rec.Terminal() {
			return
		}
		if rec.State != StateRunning {
			rec.State = StateQueued
		}
	case EventStarted:
		if !rec.Terminal() {
			rec.State = StateRunning
		}
	case EventFinished:
		rec.ErrorKind = ev.ErrorKind
		if ev.ErrorKind == "" || ev.ErrorKind == "degraded" {
			rec.State = StateDone
		} else {
			rec.State = StateFailed
		}
	case EventCanceled:
		rec.State = StateCanceled
		rec.ErrorKind = ev.ErrorKind
	}
}

// Recovered returns the job table replayed at Open, in first-seen order.
// The slice is the caller's to keep; the journal does not retain it.
func (j *Journal) Recovered() []JobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := j.recovered
	j.recovered = nil
	return out
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Append durably records one event: sealed, written, and fsynced before
// returning (unless Options.NoSync). The journal.append fault point
// stands in for a full disk or failing device; callers treat append
// failure as degraded durability, not unavailability.
func (j *Journal) Append(ev Event) error {
	if err := faults.Fail("journal.append"); err != nil {
		return err
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	payload, err := json.Marshal(&ev)
	if err != nil {
		return fmt.Errorf("journal: encode: %w", err)
	}
	rec := Seal(payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	if _, err := j.f.Write(rec); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if !j.opts.NoSync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	j.size += int64(len(rec))
	j.appends.Inc()
	j.applyLiveLocked(&ev)
	if j.size >= j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// applyLiveLocked mirrors the replay state machine onto the live-job
// table that rotation compacts from. Caller holds j.mu.
func (j *Journal) applyLiveLocked(ev *Event) {
	switch ev.Type {
	case EventSubmitted:
		if _, ok := j.live[ev.JobID]; !ok {
			j.live[ev.JobID] = &JobRecord{Submitted: *ev, State: StateQueued}
			j.liveOrder = append(j.liveOrder, ev.JobID)
		}
	case EventStarted:
		if rec, ok := j.live[ev.JobID]; ok {
			rec.State = StateRunning
		}
	case EventFinished, EventCanceled:
		if _, ok := j.live[ev.JobID]; ok {
			delete(j.live, ev.JobID)
			for i, id := range j.liveOrder {
				if id == ev.JobID {
					j.liveOrder = append(j.liveOrder[:i], j.liveOrder[i+1:]...)
					break
				}
			}
		}
	}
}

// rotateLocked compacts the journal into a fresh segment: live jobs are
// re-written (their submission event, plus a started marker for running
// ones), the new segment is fsynced into place, and only then are the
// older segments removed — a crash mid-rotation leaves duplicates, which
// replay applies idempotently, never holes. Caller holds j.mu.
func (j *Journal) rotateLocked() error {
	next := j.seg + 1
	p := filepath.Join(j.dir, segName(next))
	f, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	var size int64
	for _, id := range j.liveOrder {
		rec := j.live[id]
		events := []Event{rec.Submitted}
		if rec.State == StateRunning {
			events = append(events, Event{Type: EventStarted, JobID: id, Time: time.Now()})
		}
		for _, ev := range events {
			payload, err := json.Marshal(&ev)
			if err != nil {
				f.Close()
				return fmt.Errorf("journal: rotate encode: %w", err)
			}
			b := Seal(payload)
			if _, err := f.Write(b); err != nil {
				f.Close()
				return fmt.Errorf("journal: rotate write: %w", err)
			}
			size += int64(len(b))
		}
	}
	if !j.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("journal: rotate sync: %w", err)
		}
	}
	if err := syncDir(j.dir); err != nil {
		f.Close()
		return err
	}
	old, oldSeg := j.f, j.seg
	j.f, j.seg, j.size = f, next, size
	old.Close()
	os.Remove(filepath.Join(j.dir, segName(oldSeg)))
	syncDir(j.dir)
	j.rotations.Inc()
	j.log.Debug("journal_rotated",
		obslog.F("segment", segName(next)),
		obslog.F("live_jobs", len(j.liveOrder)),
		obslog.F("bytes", size))
	return nil
}

// Close fsyncs and closes the current segment.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if !j.opts.NoSync {
		j.f.Sync()
	}
	return j.f.Close()
}

// syncDir fsyncs a directory so entry creation/removal is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: sync dir: %w", err)
	}
	return nil
}
