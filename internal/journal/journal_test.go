package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/faults"
)

func openT(t *testing.T, dir string) *Journal {
	t.Helper()
	j, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestSealUnsealRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 1000)} {
		got, err := Unseal(Seal(payload))
		if err != nil {
			t.Fatalf("Unseal(Seal(%d bytes)): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip altered payload: %q vs %q", got, payload)
		}
	}
}

func TestUnsealDetectsDamage(t *testing.T) {
	rec := Seal([]byte("payload bytes"))

	// Truncation at every prefix length must be ErrTruncated or ErrCorrupt,
	// never a bogus success.
	for n := 0; n < len(rec); n++ {
		if _, err := Unseal(rec[:n]); err == nil {
			t.Fatalf("Unseal accepted a %d/%d-byte prefix", n, len(rec))
		}
	}
	// A flipped payload bit must fail the checksum.
	bad := append([]byte(nil), rec...)
	bad[len(bad)-1] ^= 0x40
	if _, err := Unseal(bad); err == nil {
		t.Fatal("Unseal accepted a corrupted payload")
	}
	// A wrong magic must be ErrCorrupt.
	bad = append([]byte(nil), rec...)
	bad[0] = 'X'
	if _, err := Unseal(bad); err == nil {
		t.Fatal("Unseal accepted a bad magic")
	}
}

func TestAppendReplayLifecycle(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir)
	events := []Event{
		{Type: EventSubmitted, JobID: "j1", Kind: "flow", Path: "/v1/flow", Body: []byte(`{"bench":"xor2"}`), Key: "flow:abc", IdemKey: "idem-1"},
		{Type: EventStarted, JobID: "j1"},
		{Type: EventSubmitted, JobID: "j2", Kind: "simulate", Path: "/v1/simulate"},
		{Type: EventFinished, JobID: "j1"},
		{Type: EventSubmitted, JobID: "j3", Kind: "validate"},
		{Type: EventStarted, JobID: "j3"},
		{Type: EventCanceled, JobID: "j3", ErrorKind: "canceled"},
		{Type: EventSubmitted, JobID: "j4", Kind: "flow"},
		{Type: EventStarted, JobID: "j4"},
		{Type: EventFinished, JobID: "j4", ErrorKind: "panic"},
		{Type: EventSubmitted, JobID: "j5", Kind: "flow"},
		{Type: EventStarted, JobID: "j5"},
	}
	for _, ev := range events {
		if err := j.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2 := openT(t, dir)
	defer j2.Close()
	recs := j2.Recovered()
	want := map[string][2]string{ // id -> {state, error_kind}
		"j1": {StateDone, ""},
		"j2": {StateQueued, ""},
		"j3": {StateCanceled, "canceled"},
		"j4": {StateFailed, "panic"},
		"j5": {StateRunning, ""},
	}
	if len(recs) != len(want) {
		t.Fatalf("recovered %d jobs, want %d", len(recs), len(want))
	}
	for _, r := range recs {
		w, ok := want[r.Submitted.JobID]
		if !ok {
			t.Fatalf("unexpected job %q", r.Submitted.JobID)
		}
		if r.State != w[0] || r.ErrorKind != w[1] {
			t.Errorf("job %s: state %q kind %q, want %q %q",
				r.Submitted.JobID, r.State, r.ErrorKind, w[0], w[1])
		}
	}
	// The submission payload must survive replay byte for byte — it is
	// what resubmission re-creates the work from.
	for _, r := range recs {
		if r.Submitted.JobID == "j1" {
			if string(r.Submitted.Body) != `{"bench":"xor2"}` || r.Submitted.Key != "flow:abc" ||
				r.Submitted.IdemKey != "idem-1" || r.Submitted.Path != "/v1/flow" {
				t.Errorf("j1 submission payload mangled: %+v", r.Submitted)
			}
		}
	}
}

// TestTornTailTruncates proves the crash-mid-append case: a half-written
// final record must be dropped cleanly, the events before it must stand,
// and the journal must keep accepting appends afterwards.
func TestTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir)
	for i := 0; i < 5; i++ {
		if err := j.Append(Event{Type: EventSubmitted, JobID: fmt.Sprintf("j%d", i), Kind: "flow"}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	seg := filepath.Join(dir, segName(1))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the tail: keep all but the final 7 bytes of the last record.
	if err := os.WriteFile(seg, b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := openT(t, dir)
	recs := j2.Recovered()
	if len(recs) != 4 {
		t.Fatalf("recovered %d jobs after torn tail, want 4", len(recs))
	}
	// The file must have been truncated to the last good boundary, and a
	// fresh append after the tear must replay cleanly.
	if err := j2.Append(Event{Type: EventSubmitted, JobID: "j9", Kind: "flow"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3 := openT(t, dir)
	defer j3.Close()
	if got := len(j3.Recovered()); got != 5 {
		t.Fatalf("recovered %d jobs after post-tear append, want 5", got)
	}
}

// TestCorruptMidFileStopsSegment proves a flipped bit mid-segment cannot
// poison replay: records before the damage stand, records after it are
// abandoned (the honest choice — their framing can no longer be trusted).
func TestCorruptMidFileStopsSegment(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir)
	for i := 0; i < 6; i++ {
		if err := j.Append(Event{Type: EventSubmitted, JobID: fmt.Sprintf("j%d", i), Kind: "flow"}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	seg := filepath.Join(dir, segName(1))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	j2 := openT(t, dir)
	defer j2.Close()
	recs := j2.Recovered()
	if len(recs) == 0 || len(recs) >= 6 {
		t.Fatalf("recovered %d jobs from a mid-file-corrupt segment, want 1..5", len(recs))
	}
}

// TestRotationCompacts proves rotation drops completed lifecycles and
// carries live jobs forward: after many completed jobs force rotations,
// only the live jobs replay and older segments are gone.
func TestRotationCompacts(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true, SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	// One long-lived running job that every rotation must carry forward.
	j.Append(Event{Type: EventSubmitted, JobID: "live", Kind: "flow", Body: []byte(`{"bench":"c17"}`)})
	j.Append(Event{Type: EventStarted, JobID: "live"})
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("j%04d", i)
		j.Append(Event{Type: EventSubmitted, JobID: id, Kind: "simulate"})
		j.Append(Event{Type: EventStarted, JobID: id})
		j.Append(Event{Type: EventFinished, JobID: id})
	}
	j.Close()

	segs, err := j.listSegments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("%d segments after rotation, want 1 (compaction must delete old ones)", len(segs))
	}
	j2 := openT(t, dir)
	defer j2.Close()
	recs := j2.Recovered()
	// Completed jobs appended since the last rotation legitimately linger
	// in the current segment; compaction's guarantee is that the table
	// stays bounded (not 601 events of history) and the live job survives.
	if len(recs) > 20 {
		t.Fatalf("recovered %d jobs; compaction is not dropping completed lifecycles", len(recs))
	}
	var liveRecs []JobRecord
	for _, r := range recs {
		if !r.Terminal() {
			liveRecs = append(liveRecs, r)
		}
	}
	if len(liveRecs) != 1 {
		t.Fatalf("%d non-terminal jobs recovered, want exactly the live one", len(liveRecs))
	}
	r := liveRecs[0]
	if r.Submitted.JobID != "live" || r.State != StateRunning || string(r.Submitted.Body) != `{"bench":"c17"}` {
		t.Fatalf("live job mangled by compaction: %+v", r)
	}
}

// TestReplayDeterminism is the satellite regression: N interleaved
// lifecycle records, a torn final record, AND an injected journal.replay
// fault must still produce an identical recovered job table on every
// replay (a fixed fault seed replays the same skip schedule).
func TestReplayDeterminism(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir)
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("j%04d", i)
		j.Append(Event{Type: EventSubmitted, JobID: id, Kind: "flow", Body: []byte(fmt.Sprintf(`{"n":%d}`, i))})
		if i%2 == 0 {
			j.Append(Event{Type: EventStarted, JobID: id})
		}
		switch i % 4 {
		case 0:
			j.Append(Event{Type: EventFinished, JobID: id})
		case 1:
			j.Append(Event{Type: EventCanceled, JobID: id, ErrorKind: "timeout"})
		}
	}
	j.Close()
	seg := filepath.Join(dir, segName(1))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, b[:len(b)-11], 0o644); err != nil { // torn tail
		t.Fatal(err)
	}

	replay := func() []JobRecord {
		// Same fault spec and seed each time: the skip schedule must replay
		// identically.
		if err := faults.Arm("journal.replay=every:9", 1); err != nil {
			t.Fatal(err)
		}
		defer faults.Disarm()
		// Open truncates the torn tail on the first replay; later replays
		// see the already-clean file. Both must yield the same table.
		jr, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		defer jr.Close()
		return jr.Recovered()
	}

	first := replay()
	if len(first) == 0 {
		t.Fatal("empty recovered table")
	}
	var wg sync.WaitGroup
	tables := make([][]JobRecord, 8)
	for i := range tables {
		// Sequential opens (the journal locks its segment files by
		// convention, not flock) — but compare under -race via goroutine
		// handoff of the results.
		tables[i] = replay()
	}
	for i := range tables {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if !reflect.DeepEqual(first, tables[i]) {
				t.Errorf("replay %d diverged:\nfirst: %+v\n  got: %+v", i, first, tables[i])
			}
		}(i)
	}
	wg.Wait()
}

// TestAppendFaultPoint proves the journal.append fault surfaces as an
// error without wedging the journal.
func TestAppendFaultPoint(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir)
	defer j.Close()
	if err := faults.Arm("journal.append=n:2", 1); err != nil {
		t.Fatal(err)
	}
	defer faults.Disarm()
	if err := j.Append(Event{Type: EventSubmitted, JobID: "a", Kind: "flow"}); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	if err := j.Append(Event{Type: EventSubmitted, JobID: "b", Kind: "flow"}); err == nil {
		t.Fatal("append 2: fault did not fire")
	}
	if err := j.Append(Event{Type: EventSubmitted, JobID: "c", Kind: "flow"}); err != nil {
		t.Fatalf("append 3 (after fault): %v", err)
	}
}

// TestConcurrentAppend drives appends from many goroutines (the queue's
// workers and the HTTP submit path interleave in production) under -race.
func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true, SegmentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("g%dj%d", g, i)
				j.Append(Event{Type: EventSubmitted, JobID: id, Kind: "flow"})
				j.Append(Event{Type: EventStarted, JobID: id})
				j.Append(Event{Type: EventFinished, JobID: id})
			}
		}(g)
	}
	wg.Wait()
	j.Close()
	j2 := openT(t, dir)
	defer j2.Close()
	for _, r := range j2.Recovered() {
		if !r.Terminal() {
			t.Fatalf("job %s replayed non-terminal (%s) after full lifecycles", r.Submitted.JobID, r.State)
		}
	}
}
