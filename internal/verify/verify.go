// Package verify implements formal verification of gate-level layouts
// against their logic specifications — flow step (5) of the Bestagon paper,
// following the SAT-based equivalence-checking approach of [50].
//
// A miter is built over the specification XAG and the network extracted
// from the layout: corresponding primary inputs are tied together, each
// pair of corresponding outputs is XORed, and the disjunction of the XORs
// is asserted. The layout is equivalent to the specification iff the miter
// is unsatisfiable; a satisfying assignment is returned as a counterexample
// otherwise.
package verify

import (
	"context"
	"fmt"

	"repro/internal/gatelayout"
	"repro/internal/logic/network"
	"repro/internal/sat"
)

// Result reports the outcome of an equivalence check.
type Result struct {
	Equivalent bool
	// Counterexample holds a distinguishing input assignment (bit i = PI i)
	// when Equivalent is false.
	Counterexample uint32
	// Conflicts is the SAT effort spent (same as Metrics.Conflicts).
	Conflicts int64
	// Metrics is the full SAT search-effort breakdown of the miter solve.
	Metrics sat.Metrics
}

// tseitin encodes an XAG into the solver, returning literals for each PO
// given literals for each PI.
func tseitin(s *sat.Solver, x *network.XAG, piLits []sat.Lit) []sat.Lit {
	lits := make([]sat.Lit, x.NumNodes())
	constFalse := s.NewVar()
	s.AddClause(constFalse.Neg())
	lits[0] = constFalse
	for i := 0; i < x.NumPIs(); i++ {
		lits[x.PI(i).Node()] = piLits[i]
	}
	get := func(sg network.Signal) sat.Lit {
		l := lits[sg.Node()]
		if sg.Neg() {
			return l.Neg()
		}
		return l
	}
	for n := 1; n < x.NumNodes(); n++ {
		switch x.Kind(n) {
		case network.KindAnd:
			a, b := x.FanIns(n)
			la, lb := get(a), get(b)
			v := s.NewVar()
			s.AddClause(v.Neg(), la)
			s.AddClause(v.Neg(), lb)
			s.AddClause(v, la.Neg(), lb.Neg())
			lits[n] = v
		case network.KindXor:
			a, b := x.FanIns(n)
			la, lb := get(a), get(b)
			v := s.NewVar()
			s.AddClause(v.Neg(), la, lb)
			s.AddClause(v.Neg(), la.Neg(), lb.Neg())
			s.AddClause(v, la.Neg(), lb)
			s.AddClause(v, la, lb.Neg())
			lits[n] = v
		}
	}
	out := make([]sat.Lit, x.NumPOs())
	for i := 0; i < x.NumPOs(); i++ {
		out[i] = get(x.PO(i))
	}
	return out
}

// EquivalentNetworks checks two XAGs for combinational equivalence via a
// SAT miter. The networks must have identical PI/PO counts; PIs correspond
// by index.
func EquivalentNetworks(a, b *network.XAG) (Result, error) {
	return EquivalentNetworksContext(context.Background(), a, b)
}

// EquivalentNetworksContext is EquivalentNetworks under a context:
// cancellation or deadline expiry interrupts the miter solve and returns
// the context's error. A nil context behaves like context.Background.
func EquivalentNetworksContext(ctx context.Context, a, b *network.XAG) (Result, error) {
	if a.NumPIs() != b.NumPIs() {
		return Result{}, fmt.Errorf("verify: PI count mismatch: %d vs %d", a.NumPIs(), b.NumPIs())
	}
	if a.NumPOs() != b.NumPOs() {
		return Result{}, fmt.Errorf("verify: PO count mismatch: %d vs %d", a.NumPOs(), b.NumPOs())
	}
	s := sat.New()
	piLits := make([]sat.Lit, a.NumPIs())
	for i := range piLits {
		piLits[i] = s.NewVar()
	}
	outA := tseitin(s, a, piLits)
	outB := tseitin(s, b, piLits)
	// Miter: OR over (outA[i] XOR outB[i]) must be satisfiable for
	// non-equivalence.
	var xorLits []sat.Lit
	for i := range outA {
		x := s.NewVar()
		la, lb := outA[i], outB[i]
		s.AddClause(x.Neg(), la, lb)
		s.AddClause(x.Neg(), la.Neg(), lb.Neg())
		s.AddClause(x, la.Neg(), lb)
		s.AddClause(x, la, lb.Neg())
		xorLits = append(xorLits, x)
	}
	s.AddClause(xorLits...)
	status := s.SolveContext(ctx)
	m := s.Metrics()
	switch status {
	case sat.Unsat:
		return Result{Equivalent: true, Conflicts: m.Conflicts, Metrics: m}, nil
	case sat.Sat:
		var cex uint32
		for i, l := range piLits {
			if s.Value(l) {
				cex |= 1 << i
			}
		}
		return Result{Equivalent: false, Counterexample: cex, Conflicts: m.Conflicts, Metrics: m}, nil
	default:
		if ctx != nil && ctx.Err() != nil {
			return Result{}, fmt.Errorf("verify: equivalence check canceled: %w", ctx.Err())
		}
		return Result{}, fmt.Errorf("verify: SAT solver returned %v", status)
	}
}

// EquivalentLayout checks a gate-level layout against its specification:
// the layout network is extracted and compared with a SAT miter. PI/PO
// correspondence is positional (layout pins are ordered row-major, matching
// the placement order produced by the physical design engines).
func EquivalentLayout(spec *network.XAG, l *gatelayout.Layout) (Result, error) {
	return EquivalentLayoutContext(context.Background(), spec, l)
}

// EquivalentLayoutContext is EquivalentLayout under a context (see
// EquivalentNetworksContext).
func EquivalentLayoutContext(ctx context.Context, spec *network.XAG, l *gatelayout.Layout) (Result, error) {
	extracted, err := l.ExtractNetwork()
	if err != nil {
		return Result{}, fmt.Errorf("verify: extraction failed: %w", err)
	}
	return EquivalentNetworksContext(ctx, spec, extracted)
}

// ExhaustiveEquivalent cross-checks equivalence by simulating all input
// assignments; usable up to ~20 inputs and used in tests to validate the
// SAT path.
func ExhaustiveEquivalent(a, b *network.XAG) (bool, uint32) {
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		return false, 0
	}
	for in := uint32(0); in < 1<<a.NumPIs(); in++ {
		if a.Simulate(in) != b.Simulate(in) {
			return false, in
		}
	}
	return true, 0
}
