package verify

import (
	"math/rand"
	"testing"

	"repro/internal/logic/bench"
	"repro/internal/logic/mapping"
	"repro/internal/logic/network"
	"repro/internal/logic/rewrite"
	"repro/internal/pnr"
)

func TestEquivalentIdentical(t *testing.T) {
	a, err := bench.Load("c17")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := bench.Load("c17")
	res, err := EquivalentNetworks(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Errorf("identical networks reported different at %b", res.Counterexample)
	}
}

func TestEquivalentAfterRewrite(t *testing.T) {
	for _, name := range []string{"xor5_majority", "par_check", "mux21", "t_5"} {
		a, err := bench.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		b := rewrite.Rewrite(a, rewrite.Options{})
		res, err := EquivalentNetworks(a, b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Equivalent {
			t.Errorf("%s: rewrite broke equivalence at %b", name, res.Counterexample)
		}
	}
}

func TestNotEquivalentDetected(t *testing.T) {
	a := network.New()
	x, y := a.NewPI("x"), a.NewPI("y")
	a.NewPO(a.And(x, y), "f")
	b := network.New()
	x2, y2 := b.NewPI("x"), b.NewPI("y")
	b.NewPO(b.Or(x2, y2), "f")
	res, err := EquivalentNetworks(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("AND vs OR reported equivalent")
	}
	// Counterexample must actually distinguish them.
	if a.Simulate(res.Counterexample) == b.Simulate(res.Counterexample) {
		t.Errorf("counterexample %b does not distinguish", res.Counterexample)
	}
}

func TestSubtleDifferenceDetected(t *testing.T) {
	// Two structurally different networks equal except at one minterm.
	a, err := bench.Load("par_check")
	if err != nil {
		t.Fatal(err)
	}
	b := network.New()
	var pis []network.Signal
	for i := 0; i < 4; i++ {
		pis = append(pis, b.NewPI(""))
	}
	// parity-complement of 4 inputs, but flipped at input 0b1111 by OR-ing
	// the full minterm.
	par := b.Xnor(b.Xor(pis[0], pis[1]), b.Xor(pis[2], pis[3]))
	m := b.And(b.And(pis[0], pis[1]), b.And(pis[2], pis[3]))
	b.NewPO(b.Xor(par, m), "err")
	res, err := EquivalentNetworks(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("single-minterm difference missed")
	}
	if res.Counterexample != 0b1111 {
		t.Errorf("counterexample %04b, want 1111", res.Counterexample)
	}
}

func TestInterfaceMismatchErrors(t *testing.T) {
	a := network.New()
	a.NewPO(a.NewPI("x"), "f")
	b := network.New()
	b.NewPI("x")
	b.NewPI("y")
	b.NewPO(b.PI(0), "f")
	if _, err := EquivalentNetworks(a, b); err == nil {
		t.Error("PI mismatch must error")
	}
}

func TestSATAgreesWithExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		a := randomNet(rng)
		var b *network.XAG
		if trial%2 == 0 {
			b = rewrite.Rewrite(a, rewrite.Options{})
		} else {
			b = randomNet(rng)
		}
		if b.NumPIs() != a.NumPIs() || b.NumPOs() != a.NumPOs() {
			continue
		}
		res, err := EquivalentNetworks(a, b)
		if err != nil {
			t.Fatal(err)
		}
		exh, cex := ExhaustiveEquivalent(a, b)
		if res.Equivalent != exh {
			t.Fatalf("trial %d: SAT says %v, exhaustive says %v (cex %b)", trial, res.Equivalent, exh, cex)
		}
		if !res.Equivalent && a.Simulate(res.Counterexample) == b.Simulate(res.Counterexample) {
			t.Fatalf("trial %d: bogus counterexample", trial)
		}
	}
}

func randomNet(rng *rand.Rand) *network.XAG {
	x := network.New()
	var sigs []network.Signal
	for i := 0; i < 4; i++ {
		sigs = append(sigs, x.NewPI(""))
	}
	for g := 0; g < 10; g++ {
		a := sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(2) == 1)
		b := sigs[rng.Intn(len(sigs))].NotIf(rng.Intn(2) == 1)
		if rng.Intn(2) == 0 {
			sigs = append(sigs, x.And(a, b))
		} else {
			sigs = append(sigs, x.Xor(a, b))
		}
	}
	x.NewPO(sigs[len(sigs)-1], "f")
	x.NewPO(sigs[len(sigs)-3].Not(), "g")
	return x.Cleanup()
}

func TestEquivalentLayoutAllBenchmarks(t *testing.T) {
	for _, name := range bench.Names() {
		x, err := bench.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := mapping.Map(x)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g, err := pnr.Expand(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		l, err := pnr.Ortho(g, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := EquivalentLayout(x, l)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Equivalent {
			t.Errorf("%s: layout not equivalent, cex %b", name, res.Counterexample)
		}
	}
}

func TestEquivalentLayoutCatchesCorruption(t *testing.T) {
	x, err := bench.Load("mux21")
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Map(x)
	if err != nil {
		t.Fatal(err)
	}
	g, err := pnr.Expand(m)
	if err != nil {
		t.Fatal(err)
	}
	l, err := pnr.Ortho(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one gate tile: flip AND <-> OR (or XOR <-> XNOR).
	corrupted := false
	for _, at := range l.Tiles() {
		tile, _ := l.At(at)
		switch tile.Func {
		case 6: // gates.And
			tile.Func = 7 // gates.Or
		case 7:
			tile.Func = 6
		case 10: // gates.Xor
			tile.Func = 11
		case 11:
			tile.Func = 10
		default:
			continue
		}
		if err := l.Set(at, tile); err != nil {
			t.Fatal(err)
		}
		corrupted = true
		break
	}
	if !corrupted {
		t.Skip("no 2-input gate tile found to corrupt")
	}
	res, err := EquivalentLayout(x, l)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Error("corrupted layout passed verification")
	}
}
