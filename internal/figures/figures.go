// Package figures regenerates the figures of the Bestagon paper as textual
// reports and SiQAD export files. Each Fig* function corresponds to one
// figure of the paper; see cmd/figures and EXPERIMENTS.md.
package figures

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/clocking"
	"repro/internal/core"
	"repro/internal/gatelib"
	"repro/internal/gates"
	"repro/internal/hexgrid"
	"repro/internal/lattice"
	"repro/internal/opdomain"
	"repro/internal/sidb"
	"repro/internal/sim"
	"repro/internal/sqd"
)

// renderCharges draws a cell-space map of a layout's dots with their charge
// states: '#' negative, 'o' neutral, 'P' perturber.
func renderCharges(l *sidb.Layout, charged []bool) string {
	box := l.BoundingBox()
	if box.Empty() {
		return "(empty)\n"
	}
	w := box.MaxX - box.MinX + 1
	h := box.MaxY - box.MinY + 1
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = make([]byte, w)
		for j := range grid[i] {
			grid[i][j] = '.'
		}
	}
	for i, d := range l.Dots {
		x, y := d.Site.Cell()
		ch := byte('o')
		switch {
		case d.Role == sidb.RolePerturber:
			ch = 'P'
		case charged[i]:
			ch = '#'
		}
		grid[y-box.MinY][x-box.MinX] = ch
	}
	out := ""
	for _, row := range grid {
		out += string(row) + "\n"
	}
	return out
}

// simulateGate runs a standalone gate simulation for one input pattern and
// returns the layout, ground state, and output reading.
func simulateGate(d *gatelib.Design, pattern uint32, params sim.Params) (*sidb.Layout, []bool, []int) {
	l := d.Layout(0, 0)
	for i, in := range d.Ins {
		for _, site := range gatelib.InputEmulation(in, pattern>>i&1 == 1) {
			l.Add(site, sidb.RolePerturber)
		}
	}
	for _, out := range d.Outs {
		l.Add(gatelib.OutputPerturber(out), sidb.RolePerturber)
	}
	eng := sim.NewEngine(l, params)
	gs, _ := eng.GroundState()
	idx := l.SiteIndex()
	outs := make([]int, len(d.Outs))
	for j, out := range d.Outs {
		state, err := out.BDL().State(idx, gs)
		switch {
		case err != nil:
			outs[j] = -1
		case state:
			outs[j] = 1
		}
	}
	return l, gs, outs
}

// Fig1c reproduces the OR-gate ground-state demonstration: the recreated
// Y-shaped BDL OR gate simulated for all four input combinations with the
// Fig. 1c parameters (μ_ = -0.28 eV, ε_r = 5.6, λ_TF = 5 nm) and, for
// comparison, the library calibration parameters of Fig. 5.
func Fig1c(w io.Writer, sqdOut string) error {
	lib := gatelib.NewLibrary()
	d, err := lib.Get(gates.Or,
		[]hexgrid.Direction{hexgrid.NorthWest, hexgrid.NorthEast},
		[]hexgrid.Direction{hexgrid.SouthEast})
	if err != nil {
		return err
	}
	for _, params := range []struct {
		name string
		p    sim.Params
	}{
		{"Fig 1c parameters (mu=-0.28 eV)", sim.ParamsFig1c},
		{"Fig 5 parameters (mu=-0.32 eV)", sim.ParamsFig5},
	} {
		fmt.Fprintf(w, "=== OR gate under %s ===\n", params.name)
		okAll := true
		for pattern := uint32(0); pattern < 4; pattern++ {
			l, gs, outs := simulateGate(d, pattern, params.p)
			want := 0
			if pattern != 0 {
				want = 1
			}
			status := "OK"
			if len(outs) == 0 || outs[0] != want {
				status = fmt.Sprintf("MISMATCH (got %v, want %d)", outs, want)
				okAll = false
			}
			fmt.Fprintf(w, "\ninputs a=%d b=%d -> output %v  [%s]\n",
				pattern&1, pattern>>1&1, outs, status)
			fmt.Fprint(w, renderCharges(l, gs))
			if sqdOut != "" && pattern == 3 && params.p == sim.ParamsFig1c {
				doc, err := sqd.WriteString(l)
				if err != nil {
					return err
				}
				if err := os.WriteFile(sqdOut, []byte(doc), 0o644); err != nil {
					return err
				}
			}
		}
		if okAll {
			fmt.Fprintf(w, "\nOR truth table reproduced under %s.\n\n", params.name)
		} else {
			fmt.Fprintf(w, "\nOR truth table NOT fully reproduced under %s (library is calibrated at Fig. 5 parameters).\n\n", params.name)
		}
	}
	return nil
}

// Fig2 reproduces the clocking illustration: a BDL wire split into four
// clock zones; deactivated zones have their charges removed, and the
// activated region advances one zone per phase, carrying the signal.
func Fig2(w io.Writer) error {
	fmt.Fprintln(w, "Clocking by charge population modulation (cf. Fig. 2):")
	fmt.Fprintln(w, "a logic-1 signal traverses a 12-pair BDL wire in four phases;")
	fmt.Fprintln(w, "only the two active zones hold charges, the rest are depleted.")
	fmt.Fprintln(w)

	const pairsPerZone = 3
	const zones = 4
	for phase := 0; phase < zones; phase++ {
		// Zones phase-1 and phase are active (hold + compute).
		l := &sidb.Layout{}
		active := map[int]bool{}
		for z := 0; z < zones; z++ {
			if z == phase || z == phase-1 {
				active[z] = true
			}
		}
		// Input perturber drives logic 1 at the wire head.
		l.AddCell(13, -2, sidb.RolePerturber)
		for k := 0; k < pairsPerZone*zones; k++ {
			z := k / pairsPerZone
			if !active[z] {
				continue
			}
			// Pairs along the validated (4,6) diagonal pitch.
			l.AddCell(15+4*k, 6*k, sidb.RoleNormal)
			l.AddCell(15+4*k+1, 6*k+2, sidb.RoleNormal)
		}
		eng := sim.NewEngine(l, sim.ParamsFig5)
		gs, _ := eng.GroundState()
		// Report zone states.
		fmt.Fprintf(w, "phase %d: ", phase)
		for z := 0; z < zones; z++ {
			state := "deactivated"
			if active[z] {
				state = "ACTIVE     "
			}
			fmt.Fprintf(w, "zone%d=%s  ", z, state)
		}
		charged := 0
		for i, c := range gs {
			if c && l.Dots[i].Role != sidb.RolePerturber {
				charged++
			}
		}
		fmt.Fprintf(w, "| %d electrons in surface\n", charged)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Tiles in each super-tile share one clock zone and switch together;")
	st := clocking.PlanSuperTiles(clocking.MinMetalPitchNM)
	fmt.Fprintf(w, "with the 40 nm metal pitch, one electrode drives %d tile rows (%.2f nm).\n",
		st.RowsPerSuperTile, st.PitchNM)
	return nil
}

// Fig3 reproduces the topology argument: the Y-shaped SiDB gate has ports
// at 120-degree spacing, which hexagonal tiles provide natively while
// Cartesian tiles cannot.
func Fig3(w io.Writer) error {
	fmt.Fprintln(w, "Y-shaped gate port fit: Cartesian vs. hexagonal tiles (cf. Fig. 3)")
	fmt.Fprintln(w)
	// The Y-gate's port directions (unit vectors), following the paper's
	// hexagonal adaptation: inputs from up-left and up-right, output toward
	// one of the two bottom directions — 120 degrees apart.
	yPorts := [][2]float64{
		{-math.Sin(math.Pi / 3), -math.Cos(math.Pi / 3)}, // up-left (NW)
		{math.Sin(math.Pi / 3), -math.Cos(math.Pi / 3)},  // up-right (NE)
		{math.Sin(math.Pi / 3), math.Cos(math.Pi / 3)},   // down-right (SE)
	}
	cartesian := [][2]float64{{0, -1}, {0, 1}, {-1, 0}, {1, 0}}
	hexagonal := [][2]float64{
		{-math.Sin(math.Pi / 3), -math.Cos(math.Pi / 3)},
		{math.Sin(math.Pi / 3), -math.Cos(math.Pi / 3)},
		{-math.Sin(math.Pi / 3), math.Cos(math.Pi / 3)},
		{math.Sin(math.Pi / 3), math.Cos(math.Pi / 3)},
		{-1, 0}, {1, 0},
	}
	report := func(name string, dirs [][2]float64) {
		fmt.Fprintf(w, "%s tiling:\n", name)
		total := 0.0
		for i, p := range yPorts {
			best := math.MaxFloat64
			for _, d := range dirs {
				// Angular mismatch between the port and the nearest
				// neighbor direction.
				dot := p[0]*d[0] + p[1]*d[1]
				ang := math.Acos(math.Max(-1, math.Min(1, dot))) * 180 / math.Pi
				if ang < best {
					best = ang
				}
			}
			fmt.Fprintf(w, "  port %d: nearest tile-edge mismatch %5.1f deg\n", i, best)
			total += best
		}
		fmt.Fprintf(w, "  total angular mismatch: %.1f deg\n\n", total)
	}
	report("Cartesian (4-neighbor)", cartesian)
	report("Hexagonal (pointy-top)", hexagonal)
	fmt.Fprintln(w, "The hexagonal topology natively matches all three Y-gate ports")
	fmt.Fprintln(w, "(0 deg mismatch); Cartesian grids leave 30+ degrees per input and")
	fmt.Fprintln(w, "cannot connect both inputs and the output on distinct tile edges")
	fmt.Fprintln(w, "without extra routing, as illustrated in the paper's Fig. 3a.")
	return nil
}

// Fig4 reports the standard-tile template and super-tile plan.
func Fig4(w io.Writer) error {
	fmt.Fprintln(w, "Bestagon standard tile and super-tile plan (cf. Fig. 4)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "tile size        : %d x %d lattice cells = %.2f x %.2f nm\n",
		gatelib.TileWidth, gatelib.TileHeight,
		float64(gatelib.TileWidth)*lattice.PitchX,
		float64(gatelib.TileHeight)*lattice.PitchY/2)
	fmt.Fprintf(w, "input ports      : NW at cell x=%d, NE at cell x=%d (border centers)\n",
		gatelib.PortWest, gatelib.PortEast)
	fmt.Fprintf(w, "output ports     : toward SW and SE (row below)\n")
	fmt.Fprintf(w, "canvas clearance : adjacent logic canvases >= 10 nm apart\n")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "minimum metal pitch (7 nm node [54]): %.0f nm\n", clocking.MinMetalPitchNM)
	st := clocking.PlanSuperTiles(clocking.MinMetalPitchNM)
	fmt.Fprintf(w, "tile row height                      : %.3f nm\n", clocking.TileHeightNM)
	fmt.Fprintf(w, "rows per super-tile                  : %d\n", st.RowsPerSuperTile)
	fmt.Fprintf(w, "resulting electrode pitch            : %.3f nm (>= %.0f nm)\n",
		st.PitchNM, clocking.MinMetalPitchNM)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "expanded clock zones (tile row -> zone):")
	for y := 0; y < 12; y++ {
		fmt.Fprintf(w, "  row %2d -> zone %d\n", y, st.ExpandedZone(hexgrid.Offset{X: 0, Y: y}))
	}
	return nil
}

// Fig5 validates the complete gate library with ground-state simulation at
// the Fig. 5 parameters and prints the resulting truth tables.
func Fig5(w io.Writer) error {
	fmt.Fprintln(w, "Bestagon gate library validation (cf. Fig. 5)")
	fmt.Fprintf(w, "SimAnneal ground-state model, mu=%.2f eV, eps_r=%.1f, lambda_TF=%.0f nm\n\n",
		sim.ParamsFig5.MuMinus, sim.ParamsFig5.EpsR, sim.ParamsFig5.LambdaTF)
	results := gatelib.ValidateLibrary(sim.ParamsFig5)
	var names []string
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	okCount := 0
	for _, name := range names {
		v := results[name]
		status := "OK"
		if !v.OK {
			status = "MISMATCH"
		} else {
			okCount++
		}
		fmt.Fprintf(w, "%-22s outputs=%v gap=%.4f eV  [%s, %s]\n",
			name, v.Outputs, v.MinGapEV, v.Method, status)
	}
	fmt.Fprintf(w, "\n%d/%d designs operate correctly.\n", okCount, len(names))
	return nil
}

// OpDomain runs the operational-domain analysis (the paper's §6 outlook)
// for a library gate and renders the parameter-space map.
func OpDomain(w io.Writer, fn gates.Func) error {
	lib := gatelib.NewLibrary()
	var ins, outs []hexgrid.Direction
	switch fn.NumIns() {
	case 1:
		ins = []hexgrid.Direction{hexgrid.NorthWest}
	case 2:
		ins = []hexgrid.Direction{hexgrid.NorthWest, hexgrid.NorthEast}
	}
	outs = []hexgrid.Direction{hexgrid.SouthEast}
	d, err := lib.Get(fn, ins, outs)
	if err != nil {
		return err
	}
	dom := opdomain.Analyze(d, gatelib.TruthOf(fn), opdomain.DefaultSweep())
	dom.Render(w)
	return nil
}

// Fig6 runs the full flow on the par_check benchmark and renders the
// placed-and-routed layout (cf. Fig. 6).
func Fig6(w io.Writer, sqdOut string) error {
	res, err := core.RunBenchmark("par_check", core.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Synthesized par_check layout (cf. Fig. 6)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%v\n", res.Layout)
	fmt.Fprintf(w, "engine: %s; verified equivalent: %v (SAT)\n\n",
		res.EngineUsed, res.Verification.Equivalent)
	fmt.Fprint(w, res.Layout.Render())
	fmt.Fprintf(w, "\nSiDBs: %d, area: %.2f nm2 (paper: 284 SiDBs, 11312.68 nm2)\n",
		res.SiDBs, res.AreaNM2)
	fmt.Fprintln(w, "information flows top to bottom; logic correctness ensured via formal verification")
	if sqdOut != "" {
		doc, err := res.ExportSQD()
		if err != nil {
			return err
		}
		if err := os.WriteFile(sqdOut, []byte(doc), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", sqdOut)
	}
	return nil
}
