package figures

import (
	"bytes"
	"strings"
	"testing"
)

func TestFig2Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig2(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"phase 0", "phase 3", "ACTIVE", "deactivated", "electrode"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig2 output missing %q", want)
		}
	}
}

func TestFig3Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig3(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Cartesian") || !strings.Contains(out, "Hexagonal") {
		t.Error("Fig3 must compare both tilings")
	}
	// The hexagonal section must report zero mismatch, the Cartesian a
	// non-zero one.
	hexIdx := strings.Index(out, "Hexagonal")
	if !strings.Contains(out[hexIdx:], "total angular mismatch: 0.0 deg") {
		t.Error("hexagonal tiling must fit the Y-gate exactly")
	}
	cartIdx := strings.Index(out, "Cartesian")
	cartSection := out[cartIdx:hexIdx]
	if strings.Contains(cartSection, "total angular mismatch: 0.0 deg") {
		t.Error("Cartesian tiling must not fit the Y-gate")
	}
}

func TestFig4Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig4(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"60 x 46", "40 nm", "rows per super-tile", "zone"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig4 output missing %q", want)
		}
	}
	if !strings.Contains(out, "rows per super-tile                  : 3") {
		t.Error("super-tile plan must be 3 rows at 40 nm pitch")
	}
}

func TestFig6Output(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	if err := Fig6(&buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"par_check", "verified equivalent: true", "SiDBs"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig6 output missing %q", want)
		}
	}
}

func TestFig1cRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	if err := Fig1c(&buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "OR gate under") || !strings.Contains(out, "inputs a=1 b=1") {
		t.Error("Fig1c output incomplete")
	}
}
