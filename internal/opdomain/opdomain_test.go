package opdomain

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gatelib"
	"repro/internal/gates"
	"repro/internal/hexgrid"
	"repro/internal/sim"
)

func wireVariant(t *testing.T) *gatelib.Design {
	t.Helper()
	lib := gatelib.NewLibrary()
	d, err := lib.Get(gates.Wire,
		[]hexgrid.Direction{hexgrid.NorthWest},
		[]hexgrid.Direction{hexgrid.SouthEast})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAnalyzeWireContainsCalibrationPoint(t *testing.T) {
	d := wireVariant(t)
	sweep := Sweep{
		MuMin: -0.32, MuMax: -0.32, MuSteps: 1,
		EpsMin: 5.6, EpsMax: 5.6, EpsSteps: 1,
		LambdaTF: 5,
	}
	dom := Analyze(d, func(i uint32) uint32 { return i }, sweep)
	if len(dom.Points) != 1 {
		t.Fatalf("points = %d", len(dom.Points))
	}
	if !dom.Points[0].Operational {
		t.Error("the wire must operate at its calibration point")
	}
	if dom.OperationalFraction() != 1 {
		t.Error("fraction must be 1 for a single operational point")
	}
}

func TestAnalyzeGridShape(t *testing.T) {
	d := wireVariant(t)
	sweep := Sweep{
		MuMin: -0.34, MuMax: -0.30, MuSteps: 3,
		EpsMin: 5.4, EpsMax: 5.8, EpsSteps: 2,
		LambdaTF: 5,
	}
	dom := Analyze(d, func(i uint32) uint32 { return i }, sweep)
	if len(dom.Points) != 6 {
		t.Fatalf("points = %d, want 6", len(dom.Points))
	}
	// Parameter values must span the requested ranges.
	var mus []float64
	for _, p := range dom.Points {
		mus = append(mus, p.Params.MuMinus)
	}
	foundMin, foundMax := false, false
	for _, m := range mus {
		if m == -0.34 {
			foundMin = true
		}
		if m == -0.30 {
			foundMax = true
		}
	}
	if !foundMin || !foundMax {
		t.Error("sweep endpoints missing")
	}
}

func TestDomainBoundaryExists(t *testing.T) {
	// Far outside the calibration (mu near zero) the wire must fail: with
	// mu = -0.05 eV isolated dots barely charge and pairs empty out.
	d := wireVariant(t)
	sweep := Sweep{
		MuMin: -0.05, MuMax: -0.05, MuSteps: 1,
		EpsMin: 5.6, EpsMax: 5.6, EpsSteps: 1,
		LambdaTF: 5,
	}
	dom := Analyze(d, func(i uint32) uint32 { return i }, sweep)
	if dom.Points[0].Operational {
		t.Error("the wire should not operate at mu=-0.05 eV")
	}
}

func TestRender(t *testing.T) {
	d := wireVariant(t)
	dom := Analyze(d, func(i uint32) uint32 { return i }, Sweep{
		MuMin: -0.33, MuMax: -0.31, MuSteps: 2,
		EpsMin: 5.5, EpsMax: 5.7, EpsSteps: 2,
		LambdaTF: 5,
	})
	var buf bytes.Buffer
	dom.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "operational domain") || !strings.Contains(out, "fraction") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestDefaultSweepCoversBothCalibrations(t *testing.T) {
	s := DefaultSweep()
	if s.MuMin > -0.32 || s.MuMax < -0.28 {
		t.Error("default sweep must cover both paper calibrations")
	}
	if s.LambdaTF != 5 {
		t.Error("lambda_TF fixed at 5 nm per the paper")
	}
	_ = sim.ParamsFig5
}
