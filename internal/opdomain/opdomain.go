// Package opdomain implements operational domain analysis for Bestagon
// tile designs: for a grid of physical parameter points (μ_, ε_r, λ_TF)
// it simulates a gate over all input patterns and records where the design
// operates correctly.
//
// The paper's conclusions name this as the natural follow-up study: "the
// advancement of a streamlined operational domain evaluation framework
// will also be of interest since the existing work is computationally
// heavy and not trivially quantifiable [30]" (§6). This package provides
// that framework for the reproduced library.
package opdomain

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/gatelib"
	"repro/internal/sim"
)

// Sweep defines the parameter grid to explore.
type Sweep struct {
	// MuMin/MuMax/MuSteps sweep the (-/0) transition level in eV.
	MuMin, MuMax float64
	MuSteps      int
	// EpsMin/EpsMax/EpsSteps sweep the relative permittivity.
	EpsMin, EpsMax float64
	EpsSteps       int
	// LambdaTF is held fixed (nm); the paper's studies fix it at 5 nm.
	LambdaTF float64
}

// DefaultSweep covers the neighborhood of the paper's two calibrations
// (μ_ = -0.28 and -0.32 eV, ε_r = 5.6).
func DefaultSweep() Sweep {
	return Sweep{
		MuMin: -0.36, MuMax: -0.24, MuSteps: 7,
		EpsMin: 5.0, EpsMax: 6.2, EpsSteps: 5,
		LambdaTF: 5,
	}
}

// Point is one sampled parameter combination and its outcome.
type Point struct {
	Params      sim.Params
	Operational bool
	// Correct counts input patterns with valid, correct outputs.
	Correct, Patterns int
}

// Domain is the outcome of a sweep for one design.
type Domain struct {
	Design string
	Points []Point
}

// OperationalFraction returns the fraction of sampled points at which the
// design operates.
func (d *Domain) OperationalFraction() float64 {
	if len(d.Points) == 0 {
		return 0
	}
	ok := 0
	for _, p := range d.Points {
		if p.Operational {
			ok++
		}
	}
	return float64(ok) / float64(len(d.Points))
}

// Analyze sweeps the parameter grid for a tile design against its truth
// function.
func Analyze(d *gatelib.Design, truth func(uint32) uint32, sweep Sweep) *Domain {
	dom := &Domain{Design: d.Name}
	for i := 0; i < sweep.MuSteps; i++ {
		mu := interp(sweep.MuMin, sweep.MuMax, i, sweep.MuSteps)
		for j := 0; j < sweep.EpsSteps; j++ {
			eps := interp(sweep.EpsMin, sweep.EpsMax, j, sweep.EpsSteps)
			params := sim.Params{MuMinus: mu, EpsR: eps, LambdaTF: sweep.LambdaTF}
			v := gatelib.Validate(d, truth, params)
			correct := 0
			for p, out := range v.Outputs {
				if out >= 0 && uint32(out) == truth(uint32(p)) {
					correct++
				}
			}
			dom.Points = append(dom.Points, Point{
				Params:      params,
				Operational: v.OK,
				Correct:     correct,
				Patterns:    len(v.Outputs),
			})
		}
	}
	return dom
}

// interp linearly interpolates step i of n between lo and hi.
func interp(lo, hi float64, i, n int) float64 {
	if n <= 1 {
		return lo
	}
	return lo + (hi-lo)*float64(i)/float64(n-1)
}

// Render draws the domain as an ASCII map: rows are μ_ values, columns
// ε_r values; '#' marks operational points, '.' non-operational ones.
func (d *Domain) Render(w io.Writer) {
	// Collect the axes.
	muSet := map[float64]bool{}
	epsSet := map[float64]bool{}
	for _, p := range d.Points {
		muSet[p.Params.MuMinus] = true
		epsSet[p.Params.EpsR] = true
	}
	mus := keysSorted(muSet)
	eps := keysSorted(epsSet)
	byKey := map[[2]float64]Point{}
	for _, p := range d.Points {
		byKey[[2]float64{p.Params.MuMinus, p.Params.EpsR}] = p
	}
	fmt.Fprintf(w, "operational domain of %s (lambda_TF fixed, rows mu_, cols eps_r)\n", d.Design)
	fmt.Fprintf(w, "%8s ", "")
	for _, e := range eps {
		fmt.Fprintf(w, "%5.2f ", e)
	}
	fmt.Fprintln(w)
	for _, m := range mus {
		fmt.Fprintf(w, "%8.3f ", m)
		for _, e := range eps {
			p := byKey[[2]float64{m, e}]
			mark := "  .  "
			if p.Operational {
				mark = "  #  "
			}
			fmt.Fprintf(w, "%s ", mark)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "operational fraction: %.0f%%\n", 100*d.OperationalFraction())
}

// keysSorted returns the sorted keys of a float set.
func keysSorted(set map[float64]bool) []float64 {
	out := make([]float64, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Float64s(out)
	return out
}
