// Package opdomain implements operational domain analysis for Bestagon
// tile designs: for a grid of physical parameter points (μ_, ε_r, λ_TF)
// it simulates a gate over all input patterns and records where the design
// operates correctly.
//
// The paper's conclusions name this as the natural follow-up study: "the
// advancement of a streamlined operational domain evaluation framework
// will also be of interest since the existing work is computationally
// heavy and not trivially quantifiable [30]" (§6). This package provides
// that framework for the reproduced library.
package opdomain

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
	"repro/internal/gatelib"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Sweep defines the parameter grid to explore.
type Sweep struct {
	// MuMin/MuMax/MuSteps sweep the (-/0) transition level in eV.
	MuMin, MuMax float64
	MuSteps      int
	// EpsMin/EpsMax/EpsSteps sweep the relative permittivity.
	EpsMin, EpsMax float64
	EpsSteps       int
	// LambdaTF is held fixed (nm); the paper's studies fix it at 5 nm.
	LambdaTF float64
}

// DefaultSweep covers the neighborhood of the paper's two calibrations
// (μ_ = -0.28 and -0.32 eV, ε_r = 5.6).
func DefaultSweep() Sweep {
	return Sweep{
		MuMin: -0.36, MuMax: -0.24, MuSteps: 7,
		EpsMin: 5.0, EpsMax: 6.2, EpsSteps: 5,
		LambdaTF: 5,
	}
}

// Point is one sampled parameter combination and its outcome.
type Point struct {
	Params      sim.Params
	Operational bool
	// Correct counts input patterns with valid, correct outputs.
	Correct, Patterns int
}

// Domain is the outcome of a sweep for one design.
type Domain struct {
	Design string
	Points []Point
}

// OperationalFraction returns the fraction of sampled points at which the
// design operates.
func (d *Domain) OperationalFraction() float64 {
	if len(d.Points) == 0 {
		return 0
	}
	ok := 0
	for _, p := range d.Points {
		if p.Operational {
			ok++
		}
	}
	return float64(ok) / float64(len(d.Points))
}

// Options tunes a sweep evaluation.
type Options struct {
	// Workers bounds the evaluation worker pool; <= 0 uses GOMAXPROCS.
	Workers int
	// Solver names the sim ground-state solver used per parameter point
	// ("" = automatic dispatch; see sim.SolverNames).
	Solver string
	// Tracer receives concurrency-safe sweep metrics; nil disables them.
	Tracer *obs.Tracer
}

// Analyze sweeps the parameter grid for a tile design against its truth
// function, evaluating parameter points in parallel with default options.
func Analyze(d *gatelib.Design, truth func(uint32) uint32, sweep Sweep) *Domain {
	return AnalyzeOpts(d, truth, sweep, Options{})
}

// AnalyzeOpts is Analyze with an explicit worker pool size and solver
// choice. Parameter points are evaluated concurrently by a bounded worker
// pool, but the result ordering is deterministic: points appear in
// row-major grid order (μ_ outer, ε_r inner) regardless of scheduling.
func AnalyzeOpts(d *gatelib.Design, truth func(uint32) uint32, sweep Sweep, opts Options) *Domain {
	grid := make([]sim.Params, 0, sweep.MuSteps*sweep.EpsSteps)
	for i := 0; i < sweep.MuSteps; i++ {
		mu := interp(sweep.MuMin, sweep.MuMax, i, sweep.MuSteps)
		for j := 0; j < sweep.EpsSteps; j++ {
			eps := interp(sweep.EpsMin, sweep.EpsMax, j, sweep.EpsSteps)
			grid = append(grid, sim.Params{MuMinus: mu, EpsR: eps, LambdaTF: sweep.LambdaTF})
		}
	}
	dom := &Domain{Design: d.Name, Points: make([]Point, len(grid))}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(grid) {
		workers = len(grid)
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int)
	var wg sync.WaitGroup
	var panicked atomic.Value // first recovered panic, re-raised in the caller
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, panicBox{r})
					// Keep draining so the feeder below never blocks on a
					// send to a channel nobody reads — a panicking worker
					// must not deadlock the sweep.
					for range next {
					}
				}
			}()
			if faults.Should("opdomain.point.panic") {
				panic("injected fault: opdomain.point.panic")
			}
			for i := range next {
				dom.Points[i] = evaluatePoint(d, truth, grid[i], opts)
			}
		}()
	}
	for i := range grid {
		next <- i
	}
	close(next)
	wg.Wait()
	if r := panicked.Load(); r != nil {
		// Re-raise on the caller's goroutine, where the service queue's
		// per-job recovery can convert it into a job error.
		panic(r.(panicBox).v)
	}
	opts.Tracer.Counter("opdomain/points").Add(int64(len(grid)))
	opts.Tracer.Gauge("opdomain/last_workers").Set(float64(workers))
	return dom
}

// panicBox gives every recovered panic value the same concrete type, so
// racing atomic.Value.CompareAndSwap calls never see mismatched types.
type panicBox struct{ v any }

// evaluatePoint validates the design at one parameter point.
func evaluatePoint(d *gatelib.Design, truth func(uint32) uint32, params sim.Params, opts Options) Point {
	v, err := gatelib.ValidateWith(d, truth, params, gatelib.ValidateOptions{Solver: opts.Solver, Tracer: opts.Tracer})
	if err != nil {
		// Unknown solver: fall back to automatic dispatch rather than
		// silently dropping the point.
		v = gatelib.Validate(d, truth, params)
	}
	correct := 0
	for p, out := range v.Outputs {
		if out >= 0 && uint32(out) == truth(uint32(p)) {
			correct++
		}
	}
	return Point{
		Params:      params,
		Operational: v.OK,
		Correct:     correct,
		Patterns:    len(v.Outputs),
	}
}

// interp linearly interpolates step i of n between lo and hi.
func interp(lo, hi float64, i, n int) float64 {
	if n <= 1 {
		return lo
	}
	return lo + (hi-lo)*float64(i)/float64(n-1)
}

// Render draws the domain as an ASCII map: rows are μ_ values, columns
// ε_r values; '#' marks operational points, '.' non-operational ones.
func (d *Domain) Render(w io.Writer) {
	// Collect the axes.
	muSet := map[float64]bool{}
	epsSet := map[float64]bool{}
	for _, p := range d.Points {
		muSet[p.Params.MuMinus] = true
		epsSet[p.Params.EpsR] = true
	}
	mus := keysSorted(muSet)
	eps := keysSorted(epsSet)
	byKey := map[[2]float64]Point{}
	for _, p := range d.Points {
		byKey[[2]float64{p.Params.MuMinus, p.Params.EpsR}] = p
	}
	fmt.Fprintf(w, "operational domain of %s (lambda_TF fixed, rows mu_, cols eps_r)\n", d.Design)
	fmt.Fprintf(w, "%8s ", "")
	for _, e := range eps {
		fmt.Fprintf(w, "%5.2f ", e)
	}
	fmt.Fprintln(w)
	for _, m := range mus {
		fmt.Fprintf(w, "%8.3f ", m)
		for _, e := range eps {
			p := byKey[[2]float64{m, e}]
			mark := "  .  "
			if p.Operational {
				mark = "  #  "
			}
			fmt.Fprintf(w, "%s ", mark)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "operational fraction: %.0f%%\n", 100*d.OperationalFraction())
}

// keysSorted returns the sorted keys of a float set.
func keysSorted(set map[float64]bool) []float64 {
	out := make([]float64, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Float64s(out)
	return out
}
