package opdomain

import (
	"reflect"
	"testing"

	"repro/internal/obs"

	_ "repro/internal/sim/quickexact"
)

// TestParallelMatchesSerial pins down the sweep's determinism guarantee:
// the same grid evaluated by one worker and by many workers must produce
// byte-identical points in the same row-major order.
func TestParallelMatchesSerial(t *testing.T) {
	d := wireVariant(t)
	truth := func(i uint32) uint32 { return i }
	sweep := Sweep{
		MuMin: -0.34, MuMax: -0.28, MuSteps: 4,
		EpsMin: 5.2, EpsMax: 6.0, EpsSteps: 3,
		LambdaTF: 5,
	}
	serial := AnalyzeOpts(d, truth, sweep, Options{Workers: 1})
	for _, workers := range []int{2, 4, 8} {
		par := AnalyzeOpts(d, truth, sweep, Options{Workers: workers})
		if !reflect.DeepEqual(serial.Points, par.Points) {
			t.Errorf("workers=%d: points differ from serial evaluation", workers)
		}
	}
}

// TestAnalyzeSolverOption runs a sweep through an explicitly selected exact
// backend and checks the outcome matches automatic dispatch on instances
// both can solve exactly.
func TestAnalyzeSolverOption(t *testing.T) {
	d := wireVariant(t)
	truth := func(i uint32) uint32 { return i }
	sweep := Sweep{
		MuMin: -0.32, MuMax: -0.32, MuSteps: 1,
		EpsMin: 5.6, EpsMax: 5.6, EpsSteps: 1,
		LambdaTF: 5,
	}
	auto := AnalyzeOpts(d, truth, sweep, Options{})
	qe := AnalyzeOpts(d, truth, sweep, Options{Solver: "quickexact"})
	if !reflect.DeepEqual(auto.Points, qe.Points) {
		t.Error("quickexact sweep disagrees with automatic dispatch")
	}
	if !qe.Points[0].Operational {
		t.Error("wire must operate at its calibration point under quickexact")
	}
	// An unknown solver name must not drop points: evaluatePoint falls back
	// to automatic dispatch.
	bogus := AnalyzeOpts(d, truth, sweep, Options{Solver: "no-such-solver"})
	if !reflect.DeepEqual(auto.Points, bogus.Points) {
		t.Error("unknown solver must fall back to automatic dispatch")
	}
}

// TestSweepMetrics checks the concurrency-safe sweep telemetry.
func TestSweepMetrics(t *testing.T) {
	d := wireVariant(t)
	tr := obs.New()
	sweep := Sweep{
		MuMin: -0.33, MuMax: -0.31, MuSteps: 2,
		EpsMin: 5.5, EpsMax: 5.7, EpsSteps: 2,
		LambdaTF: 5,
	}
	AnalyzeOpts(d, func(i uint32) uint32 { return i }, sweep, Options{Workers: 4, Tracer: tr})
	rep := tr.Report("sweep")
	if got := rep.Counter("opdomain/points"); got != 4 {
		t.Errorf("points counter = %d, want 4", got)
	}
}
