// Command benchdiff compares freshly generated service benchmark reports
// (BENCH_service.json, BENCH_fleet.json) against the baselines committed
// at a git ref (HEAD by default) and renders the deltas as a markdown
// table, written to BENCH_diff.md and echoed to stdout.
//
// Every numeric leaf in the two JSON trees is compared by its dotted
// path. Metrics whose direction is known (latencies and error counts are
// lower-better, throughput and hit rates are higher-better) are flagged
// as regressions when they move the wrong way by more than the tolerance
// band; everything else is reported as drift only. The exit code is zero
// unless -gate is set AND at least one known-direction metric regressed
// beyond tolerance — benchmarks on shared CI runners are too noisy for a
// hard gate by default, but the table is always produced as an artifact.
//
//	go run ./scripts/benchdiff
//	go run ./scripts/benchdiff -tolerance 0.5 -gate
//	make bench-diff
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"sort"
	"strings"
)

func main() {
	var (
		files     = flag.String("files", "BENCH_service.json,BENCH_fleet.json", "comma-separated benchmark reports to diff")
		ref       = flag.String("baseline-ref", "HEAD", "git ref holding the baseline reports")
		tolerance = flag.Float64("tolerance", 0.25, "relative tolerance band; moves beyond it are flagged")
		out       = flag.String("o", "BENCH_diff.md", "output markdown file")
		gate      = flag.Bool("gate", false, "exit nonzero when a known-direction metric regresses beyond tolerance")
	)
	flag.Parse()

	var b strings.Builder
	fmt.Fprintf(&b, "# Benchmark diff vs %s\n\n", *ref)
	fmt.Fprintf(&b, "Tolerance band: ±%.0f%%. ⚠ marks a known-direction metric that moved the wrong way beyond the band; ~ marks drift beyond the band in a metric with no known direction.\n", 100**tolerance)

	regressions := 0
	for _, file := range strings.Split(*files, ",") {
		file = strings.TrimSpace(file)
		if file == "" {
			continue
		}
		fmt.Fprintf(&b, "\n## %s\n\n", file)
		curRaw, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(&b, "_no fresh report (%v) — run the matching `make bench-*` target first_\n", err)
			continue
		}
		baseRaw, err := exec.Command("git", "show", *ref+":"+file).Output()
		if err != nil {
			fmt.Fprintf(&b, "_no baseline at %s (%v) — first run establishes it_\n", *ref, err)
			continue
		}
		rows, err := diffReports(baseRaw, curRaw, *tolerance)
		if err != nil {
			fmt.Fprintf(&b, "_diff failed: %v_\n", err)
			continue
		}
		fmt.Fprintln(&b, "| metric | baseline | current | delta | |")
		fmt.Fprintln(&b, "|---|---:|---:|---:|---|")
		for _, r := range rows {
			baseCell, curCell := formatNum(r.base), formatNum(r.cur)
			if r.delta == "new" {
				baseCell = "—"
			}
			if r.delta == "gone" {
				curCell = "—"
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n",
				r.path, baseCell, curCell, r.delta, r.flag)
			if r.flag == "⚠" {
				regressions++
			}
		}
	}

	md := b.String()
	fmt.Print(md)
	if err := os.WriteFile(*out, []byte(md), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchdiff: wrote %s (%d regression(s) beyond tolerance)\n", *out, regressions)
	if *gate && regressions > 0 {
		os.Exit(1)
	}
}

type row struct {
	path      string
	base, cur float64
	delta     string
	flag      string
}

// diffReports flattens both JSON documents to dotted numeric leaves and
// builds one table row per path present in either side.
func diffReports(baseRaw, curRaw []byte, tolerance float64) ([]row, error) {
	base, err := flatten(baseRaw)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	cur, err := flatten(curRaw)
	if err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	paths := map[string]bool{}
	for p := range base {
		paths[p] = true
	}
	for p := range cur {
		paths[p] = true
	}
	sorted := make([]string, 0, len(paths))
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)

	rows := make([]row, 0, len(sorted))
	for _, p := range sorted {
		bv, inBase := base[p]
		cv, inCur := cur[p]
		r := row{path: p, base: bv, cur: cv}
		switch {
		case !inBase:
			r.delta, r.flag = "new", ""
		case !inCur:
			r.delta, r.flag = "gone", "~"
		default:
			rel := relDelta(bv, cv)
			r.delta = formatDelta(bv, cv, rel)
			if math.Abs(rel) > tolerance {
				switch direction(p) {
				case lowerBetter:
					if cv > bv {
						r.flag = "⚠"
					}
				case higherBetter:
					if cv < bv {
						r.flag = "⚠"
					}
				default:
					r.flag = "~"
				}
			}
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// flatten renders every numeric leaf of a JSON document as a dotted path.
// Arrays use the element index as the path segment.
func flatten(raw []byte) (map[string]float64, error) {
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, err
	}
	out := map[string]float64{}
	var walk func(prefix string, v any)
	walk = func(prefix string, v any) {
		switch t := v.(type) {
		case map[string]any:
			for k, c := range t {
				p := k
				if prefix != "" {
					p = prefix + "." + k
				}
				walk(p, c)
			}
		case []any:
			for i, c := range t {
				walk(fmt.Sprintf("%s.%d", prefix, i), c)
			}
		case float64:
			out[prefix] = t
		case bool:
			// Booleans participate so a flipped scrape_ok shows up.
			if t {
				out[prefix] = 1
			} else {
				out[prefix] = 0
			}
		}
	}
	walk("", doc)
	return out, nil
}

type dir int

const (
	unknown dir = iota
	lowerBetter
	higherBetter
)

// direction classifies a metric path by its final segment: timings and
// error counts should shrink, rates and speedups should grow. Structural
// counts (requests, replicas, cold_solves) have no inherent direction —
// cold_solves moving means the workload changed, not that it got worse.
func direction(path string) dir {
	seg := path[strings.LastIndex(path, ".")+1:]
	switch {
	case strings.HasSuffix(seg, "_ms"), seg == "wall_seconds", seg == "errors":
		return lowerBetter
	case strings.HasSuffix(seg, "hit_rate"), strings.HasSuffix(seg, "speedup"),
		seg == "throughput_rps", seg == "metrics_scrape_ok":
		return higherBetter
	}
	return unknown
}

func relDelta(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (cur - base) / math.Abs(base)
}

func formatDelta(base, cur, rel float64) string {
	if math.IsInf(rel, 0) {
		return fmt.Sprintf("%+g", cur-base)
	}
	return fmt.Sprintf("%+.1f%%", 100*rel)
}

func formatNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e12 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}
