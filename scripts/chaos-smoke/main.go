// Command chaos-smoke is the fault-tolerance acceptance test for the
// bestagond daemon: it boots the real binary with the fault-injection
// registry armed (worker panics, disk-cache I/O failures, and solver
// deadline pressure all firing at 20%) and proves the service degrades
// instead of dying:
//
//   - the process never exits during a 200-request storm,
//   - /healthz answers 200 throughout,
//   - warm cached responses stay byte-identical to their cold originals
//     (degraded results must never be cached),
//   - panics surface as 500s with error_kind "panic" while the worker
//     pool keeps serving,
//   - /metrics exposes jobs_panicked_total, sim_degraded_total, and the
//     disk breaker gauges with nonzero panic/degrade counts,
//   - a defect yield sweep completes despite injected sweep-worker panics,
//     and a large async sweep cancelled mid-run lands as error_kind
//     "canceled" with the worker pool fully drained (jobs_running 0),
//   - SIGTERM still drains and exits cleanly.
//
// A second phase SIGKILLs a journaled daemon mid-job and restarts it on
// the same journal directory: every pre-crash job id must still answer
// (as error_kind "interrupted", or completed via -recover resubmit), and
// a disk-cache entry corrupted while the daemon was down must quarantine
// as a clean miss whose re-solve is byte-identical (see durability.go).
//
// A third phase boots a three-replica fleet and SIGKILLs one replica in
// the middle of a request storm: survivors must keep answering (falling
// back to local solves when the dead owner is unreachable), mark the
// peer dead within the probe window, rebalance the ring, drain their
// queues to zero, and still exit cleanly on SIGTERM (see fleet.go).
//
// Run from the repository root:
//
//	go run ./scripts/chaos-smoke
//	CHAOS_RACE=1 go run ./scripts/chaos-smoke   # daemon built with -race
//	make chaos-smoke
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// faultSpec arms every fault class the PR's failure model covers at 20%.
const faultSpec = "service.job.panic=p:0.2;cache.disk.read=p:0.2;cache.disk.write=p:0.2;sim.solve.exact=p:0.2;defectsweep.item.panic=p:0.2"

const storm = 200

var base string

func main() {
	tmp, err := os.MkdirTemp("", "chaos-smoke-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "bestagond")
	args := []string{"build", "-o", bin}
	if os.Getenv("CHAOS_RACE") == "1" {
		args = append(args, "-race")
	}
	step("building bestagond")
	build := exec.Command("go", append(args, "./cmd/bestagond")...)
	build.Stdout, build.Stderr = os.Stderr, os.Stderr
	if err := build.Run(); err != nil {
		fatal(fmt.Errorf("build: %w", err))
	}

	addr := freeAddr()
	base = "http://" + addr
	step("starting daemon with faults armed: " + faultSpec)
	daemon := exec.Command(bin,
		"-addr", addr,
		"-workers", "2",
		"-cache-dir", filepath.Join(tmp, "cache"),
		"-faults", faultSpec,
		"-faults-seed", "7",
		"-max-retries", "2",
		"-degrade-margin", "250ms",
		// Short SLO windows so budget burn is visible during the storm and
		// measurably recovers within the smoke run's few idle seconds.
		"-slo-short-window", "3s",
		"-slo-long-window", "1m",
		"-log-level", "warn",
	)
	daemon.Stdout, daemon.Stderr = os.Stderr, os.Stderr
	if err := daemon.Start(); err != nil {
		fatal(err)
	}
	defer daemon.Process.Kill()
	exited := make(chan error, 1)
	go func() { exited <- daemon.Wait() }()
	alive := func(when string) {
		select {
		case err := <-exited:
			fatal(fmt.Errorf("daemon exited %s: %v", when, err))
		default:
		}
	}

	waitHealthy(30 * time.Second)

	step("priming canonical requests (cold pass under faults)")
	var gates struct {
		Gates []string `json:"gates"`
	}
	mustGet("/v1/gates", &gates)
	if len(gates.Gates) == 0 {
		fatal(fmt.Errorf("empty gate library"))
	}
	canonical := []struct {
		path string
		req  map[string]any
		cold []byte
		hits int
	}{
		{path: "/v1/simulate", req: map[string]any{"gate": gates.Gates[0]}},
		{path: "/v1/gates/validate", req: map[string]any{"gate": gates.Gates[0]}},
		{path: "/v1/flow", req: map[string]any{"bench": "xor2", "engine": "ortho"}},
	}
	for i := range canonical {
		c := &canonical[i]
		// Injected panics (500) and degrades can hit the cold pass too;
		// retry until a clean, cacheable 200 comes back.
		for attempt := 0; ; attempt++ {
			if attempt > 50 {
				fatal(fmt.Errorf("%s: no clean cold response in %d attempts", c.path, attempt))
			}
			code, hdr, body := post(c.path, c.req)
			if code == http.StatusOK && hdr.Get("X-Degraded") == "" {
				c.cold = body
				break
			}
		}
	}

	step(fmt.Sprintf("request storm: %d mixed requests with panics, disk faults, and deadline pressure", storm))
	var codes = map[int]int{}
	var degraded, cacheHits int
	// Every error or degraded job must later have a retrievable
	// flight-recorder trace; collect their job ids as the storm runs.
	badJobs := map[string]string{} // job id -> why it must be retained
	var maxBurn float64
	for i := 0; i < storm; i++ {
		alive(fmt.Sprintf("mid-storm (request %d)", i))
		var code int
		var hdr http.Header
		var body []byte
		switch i % 5 {
		case 0, 1, 2: // canonical requests keep probing cache identity
			c := &canonical[i%3]
			code, hdr, body = post(c.path, c.req)
			if code == http.StatusOK && hdr.Get("X-Cache") == "hit" {
				c.hits++
				cacheHits++
				if hdr.Get("X-Degraded") != "" {
					fatal(fmt.Errorf("%s: a degraded response was served from cache", c.path))
				}
				if !bytes.Equal(body, c.cold) {
					fatal(fmt.Errorf("%s: warm response differs from cold original\ncold: %s\nwarm: %s", c.path, c.cold, body))
				}
			}
		case 3: // fresh simulate: deadline-pressure fault can degrade it
			code, hdr, body = post("/v1/simulate", map[string]any{
				"gate": gates.Gates[i%len(gates.Gates)],
			})
			if hdr.Get("X-Degraded") == "true" {
				degraded++
				if hdr.Get("X-Cache") == "hit" {
					fatal(fmt.Errorf("degraded simulate served from cache"))
				}
			}
		default: // timeout storm: 1ms deadlines force the canceled path
			code, hdr, body = post("/v1/flow", map[string]any{
				"bench": "mux21", "engine": "ortho", "timeout_ms": 1, "nocache": true,
			})
		}
		codes[code]++
		if hdr != nil {
			if jid := hdr.Get("X-Job-Id"); jid != "" &&
				(code >= 500 || code == http.StatusUnprocessableEntity || hdr.Get("X-Degraded") == "true") {
				badJobs[jid] = fmt.Sprintf("status %d degraded=%q", code, hdr.Get("X-Degraded"))
			}
		}
		switch code {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusGatewayTimeout:
		case http.StatusInternalServerError, http.StatusUnprocessableEntity:
			// Injected panics and fault errors; the body must carry the
			// machine-readable kind.
			var e struct {
				Kind string `json:"error_kind"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Kind == "" {
				fatal(fmt.Errorf("error response without error_kind: %d %s", code, body))
			}
		default:
			fatal(fmt.Errorf("unexpected status %d: %s", code, body))
		}
		if i%20 == 0 {
			if code := getCode("/healthz"); code != http.StatusOK {
				fatal(fmt.Errorf("healthz = %d mid-storm; daemon must stay live", code))
			}
			if b := flowBurn("3s"); b > maxBurn {
				maxBurn = b
			}
		}
	}
	alive("after the storm")
	if code := getCode("/healthz"); code != http.StatusOK {
		fatal(fmt.Errorf("healthz = %d after the storm", code))
	}
	for _, c := range canonical {
		if c.hits == 0 {
			fatal(fmt.Errorf("%s: storm never observed a cache hit; byte-identity was not exercised", c.path))
		}
	}
	fmt.Printf("chaos-smoke: status codes %v, cache hits %d, degraded %d, bad jobs %d\n",
		codes, cacheHits, degraded, len(badJobs))

	step("SLO: error budget must burn under faults and recover after")
	if b := flowBurn("3s"); b > maxBurn {
		maxBurn = b
	}
	// 20% injected faults against a 1% error budget: the short-window burn
	// rate must have exceeded 1 (burning faster than budget) mid-storm.
	if maxBurn <= 1 {
		fatal(fmt.Errorf("flow short-window burn rate peaked at %.2f; want > 1 under 20%% faults", maxBurn))
	}
	fmt.Printf("chaos-smoke: peak flow burn rate %.1f; waiting for the 3s window to drain\n", maxBurn)
	time.Sleep(4 * time.Second)
	if b := flowBurn("3s"); b != 0 {
		fatal(fmt.Errorf("flow short-window burn rate %.2f after idle; want 0 (budget recovered)", b))
	}

	step("flight recorder: every error/degraded job has a retrievable trace")
	var fr struct {
		Retained map[string]int `json:"retained"`
		Traces   []struct {
			ID string `json:"id"`
		} `json:"traces"`
	}
	mustGet("/debug/flightrecorder", &fr)
	retainedIDs := map[string]bool{}
	for _, t := range fr.Traces {
		retainedIDs[t.ID] = true
	}
	if fr.Retained["error"] == 0 {
		fatal(fmt.Errorf("flight recorder retained no error-class traces after the storm"))
	}
	if len(badJobs) == 0 {
		fatal(fmt.Errorf("storm produced no error/degraded jobs; fault injection broken"))
	}
	for id, why := range badJobs {
		if !retainedIDs[id] {
			fatal(fmt.Errorf("job %s (%s) not retained by the flight recorder", id, why))
		}
		if code := getCode("/v1/traces/" + id); code != http.StatusOK {
			fatal(fmt.Errorf("GET /v1/traces/%s = %d; want 200 for a retained %s job", id, code, why))
		}
	}
	fmt.Printf("chaos-smoke: all %d error/degraded traces retained and retrievable\n", len(badJobs))

	step("metrics: panic, degrade, and breaker series")
	metrics := rawGet("/metrics")
	for _, want := range []string{
		"jobs_panicked_total",
		"sim_degraded_total",
		"cache_disk_breaker_state",
		"cache_disk_io_errors_total",
		"faults_armed 1",
		"slo_burn_rate{",
		"flight_retained{",
	} {
		if !strings.Contains(metrics, want) {
			fatal(fmt.Errorf("metrics missing %q", want))
		}
	}
	if v := metricValue(metrics, "jobs_panicked_total"); v <= 0 {
		fatal(fmt.Errorf("jobs_panicked_total = %v; the panic fault never fired", v))
	}
	if !strings.Contains(metrics, `sim_degraded_total{`) {
		fatal(fmt.Errorf("no labeled sim_degraded_total series"))
	}

	step("defect sweep: survives injected worker panics, then cancels cleanly mid-run")
	// Small synchronous sweeps until one completes cleanly. The
	// defectsweep.item.panic fault (20% per pool worker) can kill an
	// attempt with error_kind "panic" — the daemon must isolate each one
	// and keep serving.
	var sweepPanics int
	sweepOK := false
	for attempt := 0; attempt < 40 && !sweepOK; attempt++ {
		alive("during defect sweeps")
		code, _, body := post("/v1/defects/sweep", map[string]any{
			"densities": []float64{0.3}, "seeds": 1, "workers": 2, "solver": "quickexact",
		})
		switch code {
		case http.StatusOK:
			var res struct {
				Gates  int              `json:"gates"`
				Points []map[string]any `json:"points"`
			}
			if err := json.Unmarshal(body, &res); err != nil || res.Gates == 0 || len(res.Points) != 1 {
				fatal(fmt.Errorf("degenerate sweep result: %s", body))
			}
			sweepOK = true
		case http.StatusInternalServerError, http.StatusUnprocessableEntity, http.StatusGatewayTimeout:
			var e struct {
				Kind string `json:"error_kind"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Kind == "" {
				fatal(fmt.Errorf("sweep error without error_kind: %d %s", code, body))
			}
			if e.Kind == "panic" {
				sweepPanics++
			}
		case http.StatusTooManyRequests:
			time.Sleep(100 * time.Millisecond)
		default:
			fatal(fmt.Errorf("sweep: unexpected status %d: %s", code, body))
		}
	}
	if !sweepOK {
		fatal(fmt.Errorf("no defect sweep completed cleanly in 40 attempts (%d panicked)", sweepPanics))
	}
	fmt.Printf("chaos-smoke: defect sweep completed under faults (%d attempts panicked first)\n", sweepPanics)

	// A large async sweep cancelled mid-run must land as error_kind
	// "canceled". An injected panic can beat the cancel to the job; retry
	// until the cancel wins.
	sweepCanceled := false
	for attempt := 0; attempt < 40 && !sweepCanceled; attempt++ {
		alive("during sweep cancellation")
		code, _, body := post("/v1/defects/sweep", map[string]any{
			"densities": []float64{0.5, 1, 2, 4}, "seeds": 8, "workers": 2,
			"solver": "quickexact", "async": true,
		})
		if code == http.StatusTooManyRequests {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		if code != http.StatusAccepted {
			fatal(fmt.Errorf("async sweep: status %d: %s", code, body))
		}
		var snap struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &snap); err != nil || snap.ID == "" {
			fatal(fmt.Errorf("async sweep: no job id in %s", body))
		}
		time.Sleep(150 * time.Millisecond)
		req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+snap.ID, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		deadline := time.Now().Add(30 * time.Second)
		for {
			// GET /v1/jobs/{id} nests the status under "job".
			var st struct {
				Job struct {
					State string `json:"state"`
					Kind  string `json:"error_kind"`
				} `json:"job"`
			}
			mustGet("/v1/jobs/"+snap.ID, &st)
			if st.Job.State == "canceled" {
				if st.Job.Kind != "canceled" {
					fatal(fmt.Errorf("cancelled sweep: error_kind %q, want \"canceled\"", st.Job.Kind))
				}
				sweepCanceled = true
				break
			}
			if st.Job.State == "failed" || st.Job.State == "done" {
				break // a panic or completion beat the cancel; try again
			}
			if time.Now().After(deadline) {
				fatal(fmt.Errorf("sweep %s not terminal after cancel", snap.ID))
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !sweepCanceled {
		fatal(fmt.Errorf("no async sweep observed error_kind \"canceled\" in 40 attempts"))
	}
	// No leaked workers: jobs_running must drain to zero.
	drainDeadline := time.Now().Add(10 * time.Second)
	for {
		var hz struct {
			JobsRunning int `json:"jobs_running"`
		}
		mustGet("/healthz", &hz)
		if hz.JobsRunning == 0 {
			break
		}
		if time.Now().After(drainDeadline) {
			fatal(fmt.Errorf("jobs_running = %d after sweep cancellation; workers leaked", hz.JobsRunning))
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println("chaos-smoke: mid-sweep cancellation drained cleanly (error_kind canceled, jobs_running 0)")

	step("SIGTERM: graceful drain and clean exit under faults")
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		fatal(err)
	}
	select {
	case err := <-exited:
		if err != nil {
			fatal(fmt.Errorf("daemon exit: %w", err))
		}
	case <-time.After(30 * time.Second):
		fatal(fmt.Errorf("daemon did not exit within 30s of SIGTERM"))
	}

	// Phase 2: kill -9 a journaled daemon mid-job; restarts must answer
	// for every pre-crash job id and quarantine corrupted cache entries
	// (see durability.go).
	durabilityScenario(bin)

	// Phase 3: a clustered fleet must survive losing a replica mid-storm.
	fleetScenario(bin)

	fmt.Println("chaos-smoke: PASS")
}

func freeAddr() string {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if getCode("/healthz") == http.StatusOK {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	fatal(fmt.Errorf("daemon never became healthy"))
}

func getCode(path string) int {
	resp, err := http.Get(base + path)
	if err != nil {
		return 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func rawGet(path string) string {
	resp, err := http.Get(base + path)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

func mustGet(path string, v any) {
	resp, err := http.Get(base + path)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("GET %s: status %d", path, resp.StatusCode))
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		fatal(fmt.Errorf("GET %s: %w", path, err))
	}
}

func post(path string, payload any) (int, http.Header, []byte) {
	b, _ := json.Marshal(payload)
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		fatal(fmt.Errorf("POST %s: %w (daemon gone?)", path, err))
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, body
}

// flowBurn reads the flow objective's burn rate for the named window from
// /healthz (0 when the section is missing — callers assert on peaks, so a
// transiently unreadable sample only loses one data point).
func flowBurn(window string) float64 {
	var hz struct {
		SLO map[string]struct {
			Windows []struct {
				Window   string  `json:"window"`
				BurnRate float64 `json:"burn_rate"`
			} `json:"windows"`
		} `json:"slo"`
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		return 0
	}
	for _, w := range hz.SLO["flow"].Windows {
		if w.Window == window {
			return w.BurnRate
		}
	}
	return 0
}

// metricValue extracts the sample of the first series whose name starts
// with name (labels allowed), or -1 when absent.
func metricValue(exposition, name string) float64 {
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "#") {
			continue
		}
		var v float64
		if i := strings.LastIndexByte(line, ' '); i >= 0 {
			fmt.Sscanf(line[i+1:], "%g", &v)
			return v
		}
	}
	return -1
}

func step(msg string) { fmt.Println("chaos-smoke:", msg) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chaos-smoke: FAIL:", err)
	os.Exit(1)
}
