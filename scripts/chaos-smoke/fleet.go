package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"
)

// fleetScenario is the replica-death chaos test: boot a three-replica
// fleet, storm it from concurrent clients, and SIGKILL one replica while
// requests are in flight. The fleet must degrade, not die:
//
//   - requests to the survivors keep succeeding (forwarding to the dead
//     owner falls back to a local solve),
//   - no request hangs (a hard client timeout bounds every call),
//   - survivors mark the dead peer down within the probe window and
//     rebalance the ring around it,
//   - survivor queues drain back to zero — no job is stuck waiting on
//     the dead replica,
//   - the survivors still drain and exit cleanly on SIGTERM.
func fleetScenario(bin string) {
	step("fleet: starting 3 mutually-peered replicas")
	const secret = "chaos-fleet"
	addrs := []string{freeAddr(), freeAddr(), freeAddr()}
	procs := make([]*exec.Cmd, len(addrs))
	for i, a := range addrs {
		var peers []string
		for j, p := range addrs {
			if j != i {
				peers = append(peers, p)
			}
		}
		procs[i] = exec.Command(bin,
			"-addr", a,
			"-workers", "2",
			"-peers", strings.Join(peers, ","),
			"-cluster-secret", secret,
			"-probe-interval", "200ms",
			// A short burn window lets the post-storm "burn recovers to
			// zero" check converge within the smoke-test budget.
			"-slo-short-window", "3s",
			"-log-level", "warn",
		)
		procs[i].Stdout, procs[i].Stderr = nil, nil
		if err := procs[i].Start(); err != nil {
			fatal(err)
		}
	}
	defer func() {
		for _, p := range procs {
			if p != nil && p.Process != nil {
				p.Process.Kill()
			}
		}
	}()

	targets := make([]string, len(addrs))
	for i, a := range addrs {
		targets[i] = "http://" + a
		fleetWaitHealthy(targets[i], 30*time.Second)
	}
	fleetWaitFormed(targets, len(targets), 15*time.Second)

	var gatesResp struct {
		Gates []string `json:"gates"`
	}
	fleetGetJSON(targets[0], "/v1/gates", &gatesResp)
	if len(gatesResp.Gates) == 0 {
		fatal(fmt.Errorf("fleet: empty gate library"))
	}
	gates := gatesResp.Gates
	if len(gates) > 6 {
		gates = gates[:6]
	}

	step("fleet: storm with SIGKILL of one replica mid-flight")
	// The victim is killed -- not drained -- so in-flight forwards to it
	// fail at the transport layer and survivors must fall back locally.
	const victim = 2
	// A request that outlives this timeout counts as hung; the acceptance
	// bar is "zero hung jobs", so the timeout is generous but hard.
	client := &http.Client{Timeout: 15 * time.Second}

	const clients = 6
	const rounds = 4
	var mu sync.Mutex
	var ok, deadTargetErrs, survivorErrs int
	var firstSurvivorErr error
	killed := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i, g := range gates {
					ti := (c + r + i) % len(targets)
					path := "/v1/simulate"
					if (c+i)%2 == 0 {
						path = "/v1/gates/validate"
					}
					code, err := fleetPost(client, targets[ti], path, map[string]any{"gate": g})
					mu.Lock()
					switch {
					case err == nil && code == http.StatusOK:
						ok++
					case ti == victim && isKilled(killed):
						// Requests addressed to the corpse may fail; that is
						// the client's problem, not the fleet's.
						deadTargetErrs++
					default:
						survivorErrs++
						if firstSurvivorErr == nil {
							if err == nil {
								err = fmt.Errorf("POST %s %s: status %d", targets[ti], path, code)
							}
							firstSurvivorErr = err
						}
					}
					mu.Unlock()
				}
			}
		}(c)
	}

	// Let the storm establish, then murder the victim with no warning.
	// Mark it dead before delivering the signal: in-flight requests to the
	// victim EOF as soon as the kernel reaps it — before Wait() returns —
	// and must not be misclassified as survivor errors.
	time.Sleep(500 * time.Millisecond)
	close(killed)
	if err := procs[victim].Process.Signal(syscall.SIGKILL); err != nil {
		fatal(fmt.Errorf("fleet: SIGKILL: %w", err))
	}
	procs[victim].Wait()
	wg.Wait()

	if survivorErrs > 0 {
		fatal(fmt.Errorf("fleet: %d requests to surviving replicas failed (first: %v); survivors must absorb a dead peer", survivorErrs, firstSurvivorErr))
	}
	if ok == 0 {
		fatal(fmt.Errorf("fleet: storm produced no successful requests"))
	}
	fmt.Printf("chaos-smoke: fleet storm: %d ok, %d dead-target errors, 0 survivor errors\n", ok, deadTargetErrs)

	step("fleet: survivors must mark the dead peer down and rebalance")
	survivors := []string{targets[0], targets[1]}
	deadline := time.Now().Add(10 * time.Second)
	for _, t := range survivors {
		for {
			var h fleetHealth
			fleetGetJSON(t, "/healthz", &h)
			deadSeen := false
			for _, m := range h.Cluster.Members {
				if m.Addr == addrs[victim] && !m.Alive {
					deadSeen = true
				}
			}
			if deadSeen && h.Cluster.RingMembers == len(targets)-1 {
				break
			}
			if time.Now().After(deadline) {
				fatal(fmt.Errorf("fleet: %s never marked %s dead (ring_members=%d)", t, addrs[victim], h.Cluster.RingMembers))
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	step("fleet: cluster overview must mark the dead replica within the probe window")
	// The overview aggregator polls on the probe interval, so the corpse
	// should show up as a dead replica on any survivor shortly after the
	// membership layer notices.
	deadline = time.Now().Add(10 * time.Second)
	for _, t := range survivors {
		for {
			var ov fleetOverview
			fleetGetJSON(t, "/v1/cluster/overview", &ov)
			victimDead := false
			for _, rep := range ov.Replicas {
				if rep.Addr == addrs[victim] && !rep.Alive {
					victimDead = true
				}
			}
			if victimDead && ov.DeadCount >= 1 && ov.Degraded {
				break
			}
			if time.Now().After(deadline) {
				fatal(fmt.Errorf("fleet: overview at %s never marked %s dead (dead_count=%d degraded=%v)",
					t, addrs[victim], ov.DeadCount, ov.Degraded))
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	step("fleet: survivor queues must drain to zero")
	deadline = time.Now().Add(30 * time.Second)
	for _, t := range survivors {
		for {
			var h fleetHealth
			fleetGetJSON(t, "/healthz", &h)
			if h.Saturation.QueueDepth == 0 && h.Saturation.JobsRunning == 0 {
				break
			}
			if time.Now().After(deadline) {
				fatal(fmt.Errorf("fleet: %s still has queue_depth=%d jobs_running=%d; hung jobs after replica death",
					t, h.Saturation.QueueDepth, h.Saturation.JobsRunning))
			}
			time.Sleep(200 * time.Millisecond)
		}
	}

	// Fresh work must still succeed on the rebalanced two-node ring.
	for _, t := range survivors {
		code, err := fleetPost(client, t, "/v1/simulate", map[string]any{"gate": gates[0]})
		if err != nil || code != http.StatusOK {
			fatal(fmt.Errorf("fleet: post-death request to %s: code %d err %v", t, code, err))
		}
	}

	step("fleet: burn rate must recover to zero once the storm is over")
	// The replicas run a 3s short SLO window; after the storm goes idle,
	// any error budget burned during the kill must roll out of the window
	// and the fleet-wide short-window burn must read zero again.
	deadline = time.Now().Add(15 * time.Second)
	for {
		var ov fleetOverview
		fleetGetJSON(survivors[0], "/v1/cluster/overview", &ov)
		burning := false
		for _, b := range ov.FleetBurn {
			if b.Window == "3s" && b.BurnRate > 0 {
				burning = true
			}
		}
		if !burning {
			break
		}
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("fleet: short-window burn never recovered to zero: %+v", ov.FleetBurn))
		}
		time.Sleep(250 * time.Millisecond)
	}

	step("fleet: SIGTERM survivors; both must drain and exit cleanly")
	for i, t := range survivors {
		if err := procs[i].Process.Signal(syscall.SIGTERM); err != nil {
			fatal(err)
		}
		exited := make(chan error, 1)
		go func(i int) { exited <- procs[i].Wait() }(i)
		select {
		case err := <-exited:
			if err != nil {
				fatal(fmt.Errorf("fleet: survivor %s exit: %w", t, err))
			}
		case <-time.After(30 * time.Second):
			fatal(fmt.Errorf("fleet: survivor %s did not exit within 30s of SIGTERM", t))
		}
		procs[i] = nil
	}
	fmt.Println("chaos-smoke: fleet replica-death scenario passed")
}

type fleetOverview struct {
	Replicas []struct {
		Addr  string `json:"addr"`
		Alive bool   `json:"alive"`
	} `json:"replicas"`
	DeadCount int  `json:"dead_count"`
	Degraded  bool `json:"degraded"`
	FleetBurn []struct {
		SLO      string  `json:"slo"`
		Window   string  `json:"window"`
		BurnRate float64 `json:"burn_rate"`
	} `json:"fleet_burn"`
}

type fleetHealth struct {
	Saturation struct {
		QueueDepth  int `json:"queue_depth"`
		JobsRunning int `json:"jobs_running"`
	} `json:"saturation"`
	Cluster struct {
		RingMembers int `json:"ring_members"`
		Members     []struct {
			Addr  string `json:"addr"`
			Alive bool   `json:"alive"`
		} `json:"members"`
	} `json:"cluster"`
}

func isKilled(killed chan struct{}) bool {
	select {
	case <-killed:
		return true
	default:
		return false
	}
}

func fleetPost(client *http.Client, target, path string, payload any) (int, error) {
	b, _ := json.Marshal(payload)
	resp, err := client.Post(target+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

func fleetGetJSON(target, path string, v any) {
	resp, err := http.Get(target + path)
	if err != nil {
		fatal(fmt.Errorf("GET %s%s: %w", target, path, err))
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		fatal(fmt.Errorf("GET %s%s: %w", target, path, err))
	}
}

func fleetWaitHealthy(target string, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(target + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	fatal(fmt.Errorf("fleet: replica never became healthy at %s", target))
}

func fleetWaitFormed(targets []string, n int, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		formed := 0
		for _, t := range targets {
			var h fleetHealth
			resp, err := http.Get(t + "/healthz")
			if err != nil {
				break
			}
			err = json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if err != nil || h.Cluster.RingMembers != n {
				break
			}
			alive := true
			for _, m := range h.Cluster.Members {
				alive = alive && m.Alive
			}
			if !alive {
				break
			}
			formed++
		}
		if formed == len(targets) {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	fatal(fmt.Errorf("fleet: never formed a full ring of %d within %s", n, timeout))
}
