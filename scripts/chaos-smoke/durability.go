package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// durabilityScenario is the crash-durability chaos test: a daemon with a
// write-ahead journal is SIGKILLed mid-job and restarted on the same
// journal directory. Three phases:
//
//   - default recovery: every pre-crash job id still answers on
//     /v1/jobs/{id}; jobs the kill stranded surface as failed with
//     error_kind "interrupted" and journal_recovered_total counts them,
//   - -recover resubmit: a stranded flow re-runs from its journaled
//     request bytes under its pre-crash id and completes,
//   - disk-cache integrity: a cache entry truncated while the daemon is
//     down is quarantined as a clean miss on restart, and the re-solve
//     answers byte-identically to the original.
func durabilityScenario(bin string) {
	tmp, err := os.MkdirTemp("", "chaos-durability-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(tmp)

	// ---- phase 1: SIGKILL + default recovery -> interrupted ----

	step("durability: SIGKILL mid-job, restart, ids must answer as interrupted")
	journalA := filepath.Join(tmp, "journal-a")
	addr := freeAddr()
	d1 := durStart(bin, addr, journalA, "", "fail")
	target := "http://" + addr
	fleetWaitHealthy(target, 30*time.Second)

	// One worker, several slow submissions: the kill is guaranteed to
	// strand at least the queued ones.
	ids := durSubmitStranded(target)
	if err := d1.Process.Kill(); err != nil {
		fatal(err)
	}
	d1.Wait()

	d2 := durStart(bin, addr, journalA, "", "fail")
	fleetWaitHealthy(target, 30*time.Second)
	interrupted := 0
	for _, id := range ids {
		st := durWaitTerminal(target, id, 30*time.Second)
		switch {
		case st.State == "failed" && st.ErrorKind == "interrupted":
			interrupted++
		case st.State == "done" || st.State == "failed" || st.State == "canceled":
			// Finished before the kill; the journal replays it as terminal.
		default:
			fatal(fmt.Errorf("durability: job %s recovered in state %q", id, st.State))
		}
	}
	if interrupted == 0 {
		fatal(fmt.Errorf("durability: no job recovered as interrupted (of %d pre-crash ids)", len(ids)))
	}
	metrics := durRawGet(target)
	if !strings.Contains(metrics, `journal_recovered_total{outcome="interrupted"}`) {
		fatal(fmt.Errorf("durability: journal_recovered_total{outcome=\"interrupted\"} not exported"))
	}
	durStop(d2)
	fmt.Printf("chaos-smoke: durability: %d/%d pre-crash jobs surfaced as interrupted, none lost\n",
		interrupted, len(ids))

	// ---- phase 2: SIGKILL + -recover resubmit -> completed ----

	step("durability: SIGKILL mid-job, restart with -recover resubmit")
	journalB := filepath.Join(tmp, "journal-b")
	addr2 := freeAddr()
	d3 := durStart(bin, addr2, journalB, "", "fail")
	target2 := "http://" + addr2
	fleetWaitHealthy(target2, 30*time.Second)
	ids2 := durSubmitStranded(target2)
	if err := d3.Process.Kill(); err != nil {
		fatal(err)
	}
	d3.Wait()

	d4 := durStart(bin, addr2, journalB, "", "resubmit")
	fleetWaitHealthy(target2, 30*time.Second)
	resubmitDone := 0
	for _, id := range ids2 {
		st := durWaitTerminal(target2, id, 60*time.Second)
		if st.State == "done" {
			resubmitDone++
		}
	}
	if resubmitDone == 0 {
		fatal(fmt.Errorf("durability: -recover resubmit completed none of %d pre-crash jobs", len(ids2)))
	}
	m2 := durRawGet(target2)
	if !strings.Contains(m2, `journal_recovered_total{outcome="resubmitted"}`) {
		fatal(fmt.Errorf("durability: journal_recovered_total{outcome=\"resubmitted\"} not exported"))
	}
	durStop(d4)
	fmt.Printf("chaos-smoke: durability: resubmit recovery completed %d/%d pre-crash jobs\n",
		resubmitDone, len(ids2))

	// ---- phase 3: corrupted disk-cache entry -> quarantined clean miss ----

	step("durability: truncated disk-cache entry must quarantine and re-solve byte-identically")
	cacheDir := filepath.Join(tmp, "cache")
	addr3 := freeAddr()
	d5 := durStart(bin, addr3, "", cacheDir, "fail")
	target3 := "http://" + addr3
	fleetWaitHealthy(target3, 30*time.Second)
	flowReq := map[string]any{"bench": "xor2", "engine": "ortho", "sqd": true}
	code, _, cold := durPost(target3, "/v1/flow", flowReq)
	if code != http.StatusOK {
		fatal(fmt.Errorf("durability: cold flow: status %d: %s", code, cold))
	}
	durStop(d5)

	// Corrupt every persisted entry while the daemon is down (bit rot,
	// torn write at power loss).
	corrupted := 0
	filepath.Walk(cacheDir, func(p string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(p, ".bin") {
			return nil
		}
		if err := os.Truncate(p, info.Size()/2); err != nil {
			fatal(err)
		}
		corrupted++
		return nil
	})
	if corrupted == 0 {
		fatal(fmt.Errorf("durability: no disk-cache entries persisted under %s", cacheDir))
	}

	d6 := durStart(bin, addr3, "", cacheDir, "fail")
	fleetWaitHealthy(target3, 30*time.Second)
	code, hdr, warm := durPost(target3, "/v1/flow", flowReq)
	if code != http.StatusOK {
		fatal(fmt.Errorf("durability: post-corruption flow: status %d: %s", code, warm))
	}
	if hdr.Get("X-Cache") == "disk" {
		fatal(fmt.Errorf("durability: corrupt disk entry served as a hit"))
	}
	if !bytes.Equal(cold, warm) {
		fatal(fmt.Errorf("durability: re-solve after corruption differs from original\ncold: %s\nwarm: %s", cold, warm))
	}
	m3 := durRawGet(target3)
	if v := metricValue(m3, "cache_disk_corrupt_total"); v < 1 {
		fatal(fmt.Errorf("durability: cache_disk_corrupt_total = %v; want >= 1", v))
	}
	quarantined := 0
	filepath.Walk(cacheDir, func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(p, ".corrupt") {
			quarantined++
		}
		return nil
	})
	if quarantined == 0 {
		fatal(fmt.Errorf("durability: no quarantined *.corrupt file left behind"))
	}
	durStop(d6)
	fmt.Printf("chaos-smoke: durability: %d corrupt entries quarantined, re-solve byte-identical\n", quarantined)
}

// durStart boots the daemon for the durability scenario. Empty journalDir
// or cacheDir omits the corresponding flag.
func durStart(bin, addr, journalDir, cacheDir, recoverMode string) *exec.Cmd {
	args := []string{
		"-addr", addr,
		"-workers", "1",
		"-recover", recoverMode,
		"-log-level", "warn",
	}
	if journalDir != "" {
		args = append(args, "-journal-dir", journalDir)
	}
	if cacheDir != "" {
		args = append(args, "-cache-dir", cacheDir)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		fatal(err)
	}
	return cmd
}

// durStop SIGTERMs a daemon and requires a clean exit.
func durStop(cmd *exec.Cmd) {
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			fatal(fmt.Errorf("durability: daemon exit: %w", err))
		}
	case <-time.After(30 * time.Second):
		fatal(fmt.Errorf("durability: daemon did not exit within 30s of SIGTERM"))
	}
}

// durSubmitStranded queues async work on a one-worker daemon — a defect
// sweep big enough to outlive the kill, then flows stuck behind it — and
// returns every accepted job id.
func durSubmitStranded(target string) []string {
	var ids []string
	submissions := []struct {
		path string
		req  map[string]any
	}{
		{"/v1/defects/sweep", map[string]any{
			"densities": []float64{0.5, 1, 2, 4}, "seeds": 8, "workers": 2,
			"solver": "quickexact", "async": true,
		}},
		{"/v1/flow", map[string]any{"bench": "xor2", "engine": "ortho", "nocache": true, "async": true}},
		{"/v1/flow", map[string]any{"bench": "mux21", "engine": "ortho", "nocache": true, "async": true}},
	}
	for _, sub := range submissions {
		code, _, body := durPost(target, sub.path, sub.req)
		if code != http.StatusAccepted {
			fatal(fmt.Errorf("durability: async %s: status %d: %s", sub.path, code, body))
		}
		var snap struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &snap); err != nil || snap.ID == "" {
			fatal(fmt.Errorf("durability: async %s: no job id in %s", sub.path, body))
		}
		ids = append(ids, snap.ID)
	}
	return ids
}

type durStatus struct {
	State     string `json:"state"`
	ErrorKind string `json:"error_kind"`
}

// durWaitTerminal polls /v1/jobs/{id} until the job is terminal. A 404
// is an immediate failure: journaled ids must never be lost.
func durWaitTerminal(target, id string, timeout time.Duration) durStatus {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(target + "/v1/jobs/" + id)
		if err != nil {
			fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("durability: GET /v1/jobs/%s = %d (%s); pre-crash id lost", id, resp.StatusCode, body))
		}
		var out struct {
			Job durStatus `json:"job"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			fatal(fmt.Errorf("durability: job %s: %w", id, err))
		}
		switch out.Job.State {
		case "done", "failed", "canceled":
			return out.Job
		}
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("durability: job %s still %q after %s", id, out.Job.State, timeout))
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func durPost(target, path string, payload any) (int, http.Header, []byte) {
	b, _ := json.Marshal(payload)
	resp, err := http.Post(target+path, "application/json", bytes.NewReader(b))
	if err != nil {
		fatal(fmt.Errorf("POST %s%s: %w (daemon gone?)", target, path, err))
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, body
}

func durRawGet(target string) string {
	resp, err := http.Get(target + "/metrics")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}
