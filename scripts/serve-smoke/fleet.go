package main

// Fleet section of the serve smoke test: boots two mutually-peered
// replicas from the already-built binary and exercises the fleet
// observability plane end to end — request-id propagation across a
// forwarded request, the stitched multi-hop trace on the entry replica,
// and the cluster overview reporting every live member from any member.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"syscall"
	"time"
)

func fleetSmoke(bin string) {
	const secret = "serve-smoke-fleet"
	addrs := []string{freeAddr(), freeAddr()}
	targets := []string{"http://" + addrs[0], "http://" + addrs[1]}
	var procs []*daemonProc
	for i, a := range addrs {
		peers := addrs[1-i]
		procs = append(procs, startFleetReplica(bin,
			"-addr", a,
			"-workers", "2",
			"-peers", peers,
			"-cluster-secret", secret,
			"-probe-interval", "200ms",
			"-log-level", "warn",
		))
	}
	defer func() {
		for _, p := range procs {
			p.stop()
		}
	}()
	for _, t := range targets {
		waitHealthyFleet(t, 30*time.Second)
	}
	waitRingFormed(targets, 2, 15*time.Second)

	step("fleet: X-Cluster-Peer response echoes the caller's X-Request-Id")
	// Vary the payload until one is owned by the OTHER replica, so the
	// request entry[0] receives is forwarded and the response carries
	// X-Cluster-Peer.
	var rid string
	forwarded := false
	for i := 0; i < 64 && !forwarded; i++ {
		rid = fmt.Sprintf("smoke-fleet-%04d", i)
		payload := map[string]any{
			"solver": "exgs",
			"dots": []map[string]any{
				{"x": 0, "y": 0},
				{"x": 3, "y": 0, "role": "perturber"},
				{"x": 0, "y": 4 + 2*i},
				{"x": 3, "y": 4 + 2*i, "role": "perturber"},
			},
		}
		resp := postWithID(targets[0]+"/v1/simulate", rid, payload)
		if resp.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("fleet simulate: status %d", resp.StatusCode))
		}
		if got := resp.Header.Get("X-Request-Id"); got != rid {
			fatal(fmt.Errorf("fleet response request id %q; want the client-chosen %q", got, rid))
		}
		forwarded = resp.Header.Get("X-Cluster-Peer") != ""
	}
	if !forwarded {
		fatal(fmt.Errorf("no payload variant was forwarded in 64 tries"))
	}

	step("fleet: stitched trace under the original request id")
	var st struct {
		RequestID string `json:"request_id"`
		Stitched  bool   `json:"stitched"`
		Hops      []struct {
			Peer string `json:"peer"`
		} `json:"hops"`
	}
	stitchDeadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(targets[0] + "/v1/traces/" + rid)
		if err != nil {
			fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK &&
			json.Unmarshal(body, &st) == nil && st.Stitched && len(st.Hops) == 2 {
			break
		}
		if time.Now().After(stitchDeadline) {
			fatal(fmt.Errorf("no stitched 2-hop trace for %s: status %d body %s", rid, resp.StatusCode, body))
		}
		time.Sleep(100 * time.Millisecond)
	}
	if st.RequestID != rid {
		fatal(fmt.Errorf("stitched trace request id %q; want %q", st.RequestID, rid))
	}
	hopPeers := map[string]bool{}
	for _, h := range st.Hops {
		hopPeers[h.Peer] = true
	}
	for _, a := range addrs {
		if !hopPeers[a] {
			fatal(fmt.Errorf("stitched trace missing hop for %s: %v", a, hopPeers))
		}
	}

	step("fleet: /v1/cluster/overview lists every live replica from any member")
	for _, t := range targets {
		var ov struct {
			AliveCount int `json:"alive_count"`
			Replicas   []struct {
				Addr  string          `json:"addr"`
				Alive bool            `json:"alive"`
				Stats json.RawMessage `json:"stats"`
			} `json:"replicas"`
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			resp, err := http.Get(t + "/v1/cluster/overview")
			if err != nil {
				fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			ov.AliveCount, ov.Replicas = 0, nil
			if resp.StatusCode == http.StatusOK && json.Unmarshal(body, &ov) == nil &&
				ov.AliveCount == 2 && len(ov.Replicas) == 2 &&
				ov.Replicas[0].Alive && ov.Replicas[1].Alive &&
				len(ov.Replicas[0].Stats) > 0 && len(ov.Replicas[1].Stats) > 0 {
				break
			}
			if time.Now().After(deadline) {
				fatal(fmt.Errorf("overview at %s never reported 2 live replicas with stats: %s", t, body))
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
}

// postWithID posts payload with an explicit X-Request-Id and drains the
// body (the caller only needs headers and status).
func postWithID(url, rid string, payload any) *http.Response {
	b, err := json.Marshal(payload)
	if err != nil {
		fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// waitHealthyFleet is waitHealthy against an explicit target.
func waitHealthyFleet(target string, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(target + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	fatal(fmt.Errorf("replica never became healthy at %s", target))
}

// waitRingFormed blocks until every replica reports a full ring with all
// members alive.
func waitRingFormed(targets []string, n int, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		formed := 0
		for _, t := range targets {
			resp, err := http.Get(t + "/healthz")
			if err != nil {
				break
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var h struct {
				Cluster struct {
					RingMembers int `json:"ring_members"`
					Members     []struct {
						Alive bool `json:"alive"`
					} `json:"members"`
				} `json:"cluster"`
			}
			if json.Unmarshal(body, &h) != nil || h.Cluster.RingMembers != n {
				break
			}
			alive := true
			for _, m := range h.Cluster.Members {
				alive = alive && m.Alive
			}
			if !alive {
				break
			}
			formed++
		}
		if formed == len(targets) {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	fatal(fmt.Errorf("fleet never formed a full ring of %d within %s", n, timeout))
}

// daemonProc wraps one fleet replica process for clean shutdown.
type daemonProc struct{ cmd *exec.Cmd }

func startFleetReplica(bin string, args ...string) *daemonProc {
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		fatal(err)
	}
	return &daemonProc{cmd: cmd}
}

// stop drains the replica with SIGTERM, escalating to SIGKILL if it does
// not exit within the drain window.
func (p *daemonProc) stop() {
	if p.cmd.Process == nil {
		return
	}
	p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		p.cmd.Process.Kill()
		<-done
	}
}
