// Command serve-smoke is the end-to-end smoke test for the bestagond
// daemon: it builds and boots the real binary, exercises every endpoint
// (flow, simulate, validate, gates, jobs, healthz, metrics), checks that
// a second pass is served from the cache (X-Cache: hit), fires a burst of
// concurrent requests, and finally sends SIGTERM and verifies the daemon
// drains and exits cleanly. Run from the repository root:
//
//	go run ./scripts/serve-smoke
//	make serve-smoke
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

var base string

func main() {
	tmp, err := os.MkdirTemp("", "serve-smoke-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "bestagond")
	step("building bestagond")
	build := exec.Command("go", "build", "-o", bin, "./cmd/bestagond")
	build.Stdout, build.Stderr = os.Stderr, os.Stderr
	if err := build.Run(); err != nil {
		fatal(fmt.Errorf("build: %w", err))
	}

	addr := freeAddr()
	base = "http://" + addr
	step("starting daemon on " + addr)
	daemon := exec.Command(bin,
		"-addr", addr,
		"-workers", "2",
		"-cache-dir", filepath.Join(tmp, "cache"),
		"-report", filepath.Join(tmp, "report.json"),
	)
	daemon.Stdout, daemon.Stderr = os.Stderr, os.Stderr
	if err := daemon.Start(); err != nil {
		fatal(err)
	}
	defer daemon.Process.Kill()

	waitHealthy(30 * time.Second)

	step("GET /v1/gates")
	gates := struct {
		Gates []string `json:"gates"`
	}{}
	mustGet("/v1/gates", &gates)
	if len(gates.Gates) == 0 {
		fatal(fmt.Errorf("empty gate library"))
	}

	step("cold pass: simulate, validate, flow")
	simReq := map[string]any{"gate": gates.Gates[0]}
	simCold, hit := mustPost("/v1/simulate", simReq)
	if hit {
		fatal(fmt.Errorf("cold simulate reported a cache hit"))
	}
	valReq := map[string]any{"gate": gates.Gates[0]}
	valCold, _ := mustPost("/v1/gates/validate", valReq)
	flowReq := map[string]any{"bench": "xor2", "engine": "ortho", "sqd": true}
	flowCold, hit := mustPost("/v1/flow", flowReq)
	if hit {
		fatal(fmt.Errorf("cold flow reported a cache hit"))
	}

	step("warm pass: responses must be cache hits and byte-identical")
	for _, c := range []struct {
		path string
		req  map[string]any
		cold []byte
	}{
		{"/v1/simulate", simReq, simCold},
		{"/v1/gates/validate", valReq, valCold},
		{"/v1/flow", flowReq, flowCold},
	} {
		warm, hit := mustPost(c.path, c.req)
		if !hit {
			fatal(fmt.Errorf("%s: warm response was not a cache hit", c.path))
		}
		if !bytes.Equal(warm, c.cold) {
			fatal(fmt.Errorf("%s: warm response differs from cold", c.path))
		}
	}

	step("defect-bearing flow: distinct cache entry from the pristine twin")
	defectFlowReq := map[string]any{
		"bench": "xor2", "engine": "ortho", "sqd": true,
		"defects": map[string]any{
			"list": []map[string]any{{"x": 90, "y": 23, "type": "siloxane"}},
		},
	}
	defectCold, hit := mustPost("/v1/flow", defectFlowReq)
	if hit {
		fatal(fmt.Errorf("defect-bearing flow warm-hit the pristine cache entry"))
	}
	defectWarm, hit := mustPost("/v1/flow", defectFlowReq)
	if !hit {
		fatal(fmt.Errorf("repeated defect-bearing flow was not a cache hit"))
	}
	if !bytes.Equal(defectWarm, defectCold) {
		fatal(fmt.Errorf("warm defect-bearing flow differs from cold"))
	}

	step("defect-blocked validation taxonomy")
	var blocked struct {
		OK            bool   `json:"ok"`
		FailKind      string `json:"fail_kind"`
		DefectBlocked bool   `json:"defect_blocked"`
	}
	blockedBody, _ := mustPost("/v1/gates/validate", map[string]any{
		"gate": "wire:iNW:oSE",
		"defects": map[string]any{
			"list": []map[string]any{{"x": 15, "y": 0, "type": "db"}},
		},
	})
	if err := json.Unmarshal(blockedBody, &blocked); err != nil {
		fatal(err)
	}
	if blocked.OK || blocked.FailKind != "defect_blocked" || !blocked.DefectBlocked {
		fatal(fmt.Errorf("defect on a wire dot not classified defect_blocked: %s", blockedBody))
	}

	step("async job lifecycle")
	job := submitAsync(map[string]any{"bench": "mux21", "engine": "ortho", "async": true})
	waitJob(job, 30*time.Second)

	step("GET /v1/jobs/{id}/trace")
	var trace struct {
		Trace struct {
			Stages []struct {
				Name string `json:"name"`
			} `json:"stages"`
		} `json:"trace"`
	}
	mustGet("/v1/jobs/"+job+"/trace", &trace)
	if len(trace.Trace.Stages) == 0 || trace.Trace.Stages[0].Name != "flow" {
		fatal(fmt.Errorf("job trace has no flow stage: %+v", trace.Trace.Stages))
	}

	step("GET /debug/flightrecorder")
	var fr struct {
		Retained map[string]int `json:"retained"`
		Traces   []struct {
			ID    string `json:"id"`
			Class string `json:"class"`
		} `json:"traces"`
	}
	mustGet("/debug/flightrecorder", &fr)
	if len(fr.Traces) == 0 {
		fatal(fmt.Errorf("flight recorder retained no traces after %d jobs", 5))
	}
	total := 0
	for _, n := range fr.Retained {
		total += n
	}
	if total != len(fr.Traces) {
		fatal(fmt.Errorf("flight recorder retained counts (%d) disagree with trace list (%d)", total, len(fr.Traces)))
	}

	step("GET /v1/traces/{id} (retained trace retrieval)")
	var retained struct {
		ID    string          `json:"id"`
		Trace json.RawMessage `json:"trace"`
	}
	mustGet("/v1/traces/"+fr.Traces[0].ID, &retained)
	if retained.ID != fr.Traces[0].ID || len(retained.Trace) == 0 {
		fatal(fmt.Errorf("retained trace %s came back empty", fr.Traces[0].ID))
	}

	step("concurrent burst (8 clients)")
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				code, err := postCode("/v1/simulate", map[string]any{"gate": gates.Gates[(i+k)%len(gates.Gates)]})
				if err != nil {
					errs <- err
					return
				}
				if code != http.StatusOK && code != http.StatusTooManyRequests {
					errs <- fmt.Errorf("burst: unexpected status %d", code)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		fatal(err)
	}

	step("GET /metrics (Prometheus exposition)")
	ct, metrics := rawGetType("/metrics")
	if !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		fatal(fmt.Errorf("metrics content type %q is not the exposition format", ct))
	}
	for _, want := range []string{
		"# TYPE http_requests_total counter",
		"# TYPE http_request_duration_seconds histogram",
		"# TYPE queue_wait_seconds histogram",
		"# TYPE flow_stage_seconds histogram",
		`le="+Inf"`,
		"_bucket{",
		"cache_mem_hits",
		"queue_submitted",
		"slo_burn_rate{",
		"slo_budget_remaining{",
		"flight_retained{",
	} {
		if !strings.Contains(metrics, want) {
			fatal(fmt.Errorf("metrics missing %q", want))
		}
	}
	checkCumulative(metrics, "queue_wait_seconds_bucket{le=")

	step("Idempotency-Key: a retry reattaches to the original job")
	idemReq := map[string]any{"gate": gates.Gates[0]}
	id1, body1 := postIdem("/v1/simulate", idemReq, "smoke-idem-1")
	id2, body2 := postIdem("/v1/simulate", idemReq, "smoke-idem-1")
	if id1 == "" || id1 != id2 {
		fatal(fmt.Errorf("idempotent retry got job %q, original was %q", id2, id1))
	}
	if !bytes.Equal(body1, body2) {
		fatal(fmt.Errorf("idempotent retry body differs from original"))
	}

	step("X-Request-Id response header")
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		fatal(fmt.Errorf("no X-Request-Id on response"))
	}

	step("SIGTERM: graceful drain and exit")
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- daemon.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			fatal(fmt.Errorf("daemon exit: %w", err))
		}
	case <-time.After(30 * time.Second):
		fatal(fmt.Errorf("daemon did not exit within 30s of SIGTERM"))
	}
	if _, err := os.Stat(filepath.Join(tmp, "report.json")); err != nil {
		fatal(fmt.Errorf("shutdown report not written: %w", err))
	}

	fleetSmoke(bin)

	fmt.Println("serve-smoke: PASS")
}

// freeAddr grabs an ephemeral localhost port for the daemon.
func freeAddr() string {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	fatal(fmt.Errorf("daemon never became healthy"))
}

func mustGet(path string, v any) {
	resp, err := http.Get(base + path)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("GET %s: status %d", path, resp.StatusCode))
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		fatal(fmt.Errorf("GET %s: %w", path, err))
	}
}

// rawGetType returns the Content-Type header and body of a GET.
func rawGetType(path string) (string, string) {
	resp, err := http.Get(base + path)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.Header.Get("Content-Type"), string(b)
}

// checkCumulative verifies a histogram's bucket samples never decrease
// with increasing le (the exposition contract Prometheus relies on).
func checkCumulative(exposition, prefix string) {
	prev := -1.0
	seen := 0
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			fatal(fmt.Errorf("bad sample line %q: %w", line, err))
		}
		if v < prev {
			fatal(fmt.Errorf("%s buckets not cumulative at %q", prefix, line))
		}
		prev = v
		seen++
	}
	if seen == 0 {
		fatal(fmt.Errorf("no bucket series with prefix %q", prefix))
	}
}

// mustPost returns (body, cache hit) and fails on any non-200 status.
func mustPost(path string, payload any) ([]byte, bool) {
	b, _ := json.Marshal(payload)
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(body)))
	}
	return body, resp.Header.Get("X-Cache") == "hit"
}

// postIdem posts with an Idempotency-Key header and returns the job id
// and body of the 200 response.
func postIdem(path string, payload any, key string) (string, []byte) {
	b, _ := json.Marshal(payload)
	req, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(b))
	if err != nil {
		fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("POST %s (idempotent): status %d: %s", path, resp.StatusCode, bytes.TrimSpace(body)))
	}
	return resp.Header.Get("X-Job-Id"), body
}

func postCode(path string, payload any) (int, error) {
	b, _ := json.Marshal(payload)
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

func submitAsync(payload any) string {
	b, _ := json.Marshal(payload)
	resp, err := http.Post(base+"/v1/flow", "application/json", bytes.NewReader(b))
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		fatal(fmt.Errorf("async flow: status %d", resp.StatusCode))
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		fatal(err)
	}
	if st.ID == "" {
		fatal(fmt.Errorf("async flow: no job id in response"))
	}
	return st.ID
}

func waitJob(id string, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var out struct {
			Job struct {
				State string `json:"state"`
				Error string `json:"error"`
			} `json:"job"`
			Result json.RawMessage `json:"result"`
		}
		mustGet("/v1/jobs/"+id, &out)
		switch out.Job.State {
		case "done":
			if len(out.Result) == 0 {
				fatal(fmt.Errorf("job %s done with empty result", id))
			}
			return
		case "failed", "canceled":
			fatal(fmt.Errorf("job %s %s: %s", id, out.Job.State, out.Job.Error))
		}
		time.Sleep(50 * time.Millisecond)
	}
	fatal(fmt.Errorf("job %s did not finish within %s", id, timeout))
}

func step(msg string) { fmt.Println("serve-smoke:", msg) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "serve-smoke: FAIL:", err)
	os.Exit(1)
}
