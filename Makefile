GO ?= go

.PHONY: all build test check race bench bench-sim bench-cache bench-service bench-fleet bench-diff bench-pnr bench-engines bench-defects table1 serve serve-smoke chaos-smoke clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: static analysis plus the full test suite
# under the race detector (short mode keeps the instrumented annealer and
# SAT race coverage while skipping the hour-long exhaustive sweeps). The
# second test run drives the sharded QuickExact search and the parallel
# operational-domain sweep — the two many-goroutine hot paths — through
# their full (non-short) tests under the race detector. staticcheck runs
# when installed (CI installs it; locally: go install
# honnef.co/go/tools/cmd/staticcheck@latest).
check:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo staticcheck ./...; staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	$(GO) test -race -short ./...
	$(GO) test -race -run 'TestDeterministicAcrossRunsAndWorkers|TestLargeInstanceExact|TestParallelMatchesSerial|TestSweepMetrics' \
		./internal/sim/quickexact ./internal/opdomain
	$(GO) test -race -run 'TestSweepDeterministicAcrossWorkers|TestSweepCancellation' ./internal/defects/sweep

# race runs the complete suite under the race detector (slow).
race:
	$(GO) test -race ./...

# bench-sim compares the ground-state engines (blind ExGS enumeration vs
# pruned QuickExact branch-and-bound vs annealing) and records the raw
# test2json event stream in BENCH_sim.json.
bench-sim:
	$(GO) test -run '^$$' -bench GroundState -benchmem -json ./internal/sim/... > BENCH_sim.json
	@grep -o '[^"]* ns/op[^"\\]*' BENCH_sim.json | sed 's/\\t/  /g' || true
	@echo "wrote BENCH_sim.json"

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-cache measures the bestagond result cache: cold vs warm latency
# over the simulation and flow endpoints, with a byte-identity check
# between cold and warm responses. Writes BENCH_cache.json.
bench-cache:
	$(GO) run ./cmd/benchcache

# bench-service boots the real bestagond binary and measures end-to-end
# service latency (throughput, p50/p90/p99, cache hit rate) under a mixed
# cold/warm workload from concurrent clients. Writes BENCH_service.json.
bench-service:
	$(GO) run ./cmd/benchserve

# bench-fleet boots three mutually-peered bestagond replicas and measures
# the cluster layer: a concurrent cold storm must collapse onto ~one solve
# per unique key (consistent-hash ownership + fleet-wide single-flight)
# and the fleet-wide warm hit rate must match a standalone replica's.
# Writes BENCH_fleet.json and exits nonzero on either regression.
bench-fleet:
	$(GO) run ./cmd/benchserve -replicas 3 -o BENCH_fleet.json

# bench-diff compares the working-tree BENCH_service.json/BENCH_fleet.json
# against the baselines committed at HEAD and writes the per-metric delta
# table to BENCH_diff.md. Informational by default (benchmarks on shared
# runners are noisy); add BENCHDIFF_FLAGS="-gate" to fail on regressions
# beyond the tolerance band, or "-tolerance 0.5" to widen it.
bench-diff:
	$(GO) run ./scripts/benchdiff $(BENCHDIFF_FLAGS)

# bench-pnr records the exact P&R engine's per-aspect-ratio SAT solve
# times (grid dims, SAT/UNSAT, conflicts/propagations/restarts) across the
# benchmark netlists. Writes BENCH_pnr.json. Narrow with e.g.
# BENCHPNR_FLAGS="-benches xor2,mux21 -timeout 60s".
bench-pnr:
	$(GO) run ./cmd/benchpnr $(BENCHPNR_FLAGS)

# bench-engines validates every library gate tile with each ground-state
# backend (exgs, quickexact, anneal) and records accuracy vs time per
# engine. Writes BENCH_engines.json. Reduce with BENCHENGINES_FLAGS="-limit 6".
bench-engines:
	$(GO) run ./cmd/benchengines $(BENCHENGINES_FLAGS)

# bench-defects runs the defect yield sweep: random surfaces at each
# density, the full gate library validated against each, plus small
# whole-flow yield probes. Writes BENCH_defects.json. Reduce with e.g.
# BENCHDEFECTS_FLAGS="-densities 0.2,1,4 -seeds 2 -flows ''".
bench-defects:
	$(GO) run ./cmd/defectsweep $(BENCHDEFECTS_FLAGS)

table1:
	$(GO) run ./cmd/table1

# serve runs the design-service daemon on :8711.
serve:
	$(GO) run ./cmd/bestagond

# serve-smoke builds the real daemon binary, boots it, exercises every
# endpoint (cold + warm cache pass, async jobs, concurrent burst), and
# verifies graceful drain on SIGTERM.
serve-smoke:
	$(GO) run ./scripts/serve-smoke

# chaos-smoke boots the daemon with fault injection armed (worker panics,
# disk-cache I/O failures, solver deadline pressure, each at 20%) and
# asserts it survives a 200-request storm: no process exit, healthz 200
# throughout, warm cache responses byte-identical, panic/degrade/breaker
# metrics exposed, clean SIGTERM drain. CHAOS_RACE=1 builds the daemon
# with the race detector.
chaos-smoke:
	$(GO) run ./scripts/chaos-smoke

clean:
	$(GO) clean ./...
