GO ?= go

.PHONY: all build test check race bench table1 clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: static analysis plus the full test suite
# under the race detector (short mode keeps the instrumented annealer and
# SAT race coverage while skipping the hour-long exhaustive sweeps).
check:
	$(GO) vet ./...
	$(GO) test -race -short ./...

# race runs the complete suite under the race detector (slow).
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

table1:
	$(GO) run ./cmd/table1

clean:
	$(GO) clean ./...
