// Package repro's top-level benchmarks regenerate every table and figure
// of the Bestagon paper (see EXPERIMENTS.md for the experiment index):
//
//	BenchmarkTable1/<name>  - Table 1 rows: full flow per benchmark circuit
//	BenchmarkFig1cORGate    - Fig. 1c: OR-gate ground states (μ=-0.28 eV)
//	BenchmarkFig2Clocking   - Fig. 2: clocked-wire phase simulation
//	BenchmarkFig3Topology   - Fig. 3: Cartesian vs hexagonal Y-gate fit
//	BenchmarkFig4SuperTiles - Fig. 4: tile template + super-tile plan
//	BenchmarkFig5GateLibrary- Fig. 5: gate library ground-state validation
//	BenchmarkFig6ParCheck   - Fig. 6: par_check synthesis + rendering
//
// Run with: go test -bench=. -benchmem
package repro

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/gatelib"
	"repro/internal/lattice"
	"repro/internal/logic/bench"
	"repro/internal/obs"
	"repro/internal/pnr"
	"repro/internal/sidb"
	"repro/internal/sim"
)

// table1Result caches per-benchmark flow outputs so repeated bench
// iterations measure the flow, not the ramp-up.
func runFlow(b *testing.B, name string) *core.Result {
	b.Helper()
	res, err := core.RunBenchmark(name, core.Options{
		Exact: pnr.ExactOptions{ConflictBudget: 150000},
	})
	if err != nil {
		b.Fatalf("%s: %v", name, err)
	}
	return res
}

// BenchmarkTable1 regenerates every Table 1 row: the complete flow from
// logic specification to verified SiDB layout.
func BenchmarkTable1(b *testing.B) {
	for _, bm := range bench.Benchmarks {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res = runFlow(b, bm.Name)
			}
			l := res.Layout
			b.ReportMetric(float64(l.Width()), "tiles_w")
			b.ReportMetric(float64(l.Height()), "tiles_h")
			b.ReportMetric(float64(l.Area()), "tiles")
			b.ReportMetric(float64(res.SiDBs), "SiDBs")
			b.ReportMetric(res.AreaNM2, "nm2")
			b.ReportMetric(float64(bm.PaperW*bm.PaperH), "paper_tiles")
			b.ReportMetric(float64(bm.PaperSiDBs), "paper_SiDBs")
			b.ReportMetric(bm.PaperArea, "paper_nm2")
		})
	}
}

// BenchmarkFig1cORGate simulates the recreated OR gate for all four input
// combinations at the Fig. 1c parameters.
func BenchmarkFig1cORGate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := figures.Fig1c(io.Discard, ""); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Clocking runs the four-phase clocked-wire simulation.
func BenchmarkFig2Clocking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := figures.Fig2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Topology computes the Y-gate port-fit comparison.
func BenchmarkFig3Topology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := figures.Fig3(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4SuperTiles reports the tile template and super-tile plan.
func BenchmarkFig4SuperTiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := figures.Fig4(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5GateLibrary validates the complete gate library with
// ground-state simulation at the Fig. 5 parameters and reports how many
// designs operate correctly.
func BenchmarkFig5GateLibrary(b *testing.B) {
	var okCount, total int
	for i := 0; i < b.N; i++ {
		results := gatelib.ValidateLibrary(sim.ParamsFig5)
		okCount, total = 0, 0
		for _, v := range results {
			total++
			if v.OK {
				okCount++
			}
		}
	}
	b.ReportMetric(float64(okCount), "gates_ok")
	b.ReportMetric(float64(total), "gates_total")
}

// BenchmarkFig6ParCheck synthesizes the paper's showcase par_check layout.
func BenchmarkFig6ParCheck(b *testing.B) {
	var res *core.Result
	for i := 0; i < b.N; i++ {
		res = runFlow(b, "par_check")
	}
	b.ReportMetric(float64(res.Layout.Area()), "tiles")
	b.ReportMetric(float64(res.SiDBs), "SiDBs")
}

// BenchmarkAblationEngines compares exact vs scalable physical design on
// the small benchmarks (the design-choice study DESIGN.md calls out).
func BenchmarkAblationEngines(b *testing.B) {
	for _, name := range []string{"xor2", "par_gen", "mux21"} {
		name := name
		for _, engine := range []struct {
			label string
			e     core.Engine
		}{{"exact", core.EngineExact}, {"ortho", core.EngineOrtho}} {
			engine := engine
			b.Run(fmt.Sprintf("%s/%s", name, engine.label), func(b *testing.B) {
				var res *core.Result
				var err error
				for i := 0; i < b.N; i++ {
					res, err = core.RunBenchmark(name, core.Options{
						Engine:        engine.e,
						SkipCellLevel: true,
						Exact:         pnr.ExactOptions{ConflictBudget: 150000},
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(res.Layout.Area()), "tiles")
			})
		}
	}
}

// BenchmarkAblationRewriting measures the gate-count effect of the exact
// NPN rewriting step (flow step 2).
func BenchmarkAblationRewriting(b *testing.B) {
	for _, name := range []string{"xor5_majority", "mux21", "t_5"} {
		name := name
		b.Run(name, func(b *testing.B) {
			var with, without *core.Result
			var err error
			for i := 0; i < b.N; i++ {
				with, err = core.RunBenchmark(name, core.Options{Engine: core.EngineOrtho, SkipCellLevel: true})
				if err != nil {
					b.Fatal(err)
				}
				without, err = core.RunBenchmark(name, core.Options{
					Engine: core.EngineOrtho, SkipRewrite: true, SkipCellLevel: true,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(with.Rewritten.NumGates()), "gates_rewritten")
			b.ReportMetric(float64(without.Rewritten.NumGates()), "gates_raw")
			b.ReportMetric(float64(with.Layout.Area()), "tiles_rewritten")
			b.ReportMetric(float64(without.Layout.Area()), "tiles_raw")
		})
	}
}

// BenchmarkAblationXAGvsAIG quantifies the paper's data-structure choice
// (footnote 1): XAGs yield more compact networks and layouts than AIGs on
// parity-heavy circuits because the Bestagon library has native XOR tiles.
func BenchmarkAblationXAGvsAIG(b *testing.B) {
	// cm82a_5's AIG exceeds the scalable router's congestion limits (a
	// documented fabric limitation); t exercises a comparable size.
	for _, name := range []string{"xor5_r1", "par_check", "t"} {
		name := name
		b.Run(name, func(b *testing.B) {
			var xagGates, aigGates, xagTiles, aigTiles int
			for i := 0; i < b.N; i++ {
				x, err := bench.Load(name)
				if err != nil {
					b.Fatal(err)
				}
				xag, err := core.Run(x, core.Options{Engine: core.EngineOrtho, SkipCellLevel: true})
				if err != nil {
					b.Fatal(err)
				}
				aig, err := core.Run(x.ToAIG(), core.Options{
					Engine: core.EngineOrtho, SkipRewrite: true, SkipCellLevel: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				xagGates, aigGates = xag.Rewritten.NumGates(), aig.Rewritten.NumGates()
				xagTiles, aigTiles = xag.Layout.Area(), aig.Layout.Area()
			}
			b.ReportMetric(float64(xagGates), "xag_gates")
			b.ReportMetric(float64(aigGates), "aig_gates")
			b.ReportMetric(float64(xagTiles), "xag_tiles")
			b.ReportMetric(float64(aigTiles), "aig_tiles")
		})
	}
}

// TestInstrumentedPathsRace drives the telemetry-instrumented hot paths
// (annealer sweeps, SAT search, the full flow) from concurrent goroutines
// sharing one tracer. Under `go test -race` this checks that the metric
// counters and span bookkeeping added for observability are data-race
// free. It runs in short mode so `go test -race -short ./...` covers it.
func TestInstrumentedPathsRace(t *testing.T) {
	tr := obs.New()

	// A small free-dot chain keeps each anneal fast while still exercising
	// the instrumented flip loop.
	mkLayout := func() *sidb.Layout {
		l := &sidb.Layout{}
		for i := 0; i < 5; i++ {
			l.Add(lattice.FromCell(i*4, 0), sidb.RoleNormal)
		}
		return l
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := sim.DefaultAnnealConfig()
			cfg.Seed = int64(g + 1)
			cfg.Restarts = 2
			cfg.Sweeps = 60
			cfg.Tracer = tr
			eng := sim.NewEngine(mkLayout(), sim.ParamsFig5)
			eng.Anneal(cfg)
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := core.RunBenchmark("xor2", core.Options{
			Tracer:        tr,
			Engine:        core.EngineExact,
			SkipCellLevel: true,
			Exact:         pnr.ExactOptions{ConflictBudget: 150000},
		}); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()

	rep := tr.Report("race")
	if rep.Counter("sim/anneal/flips_tried") == 0 {
		t.Error("no annealer telemetry recorded")
	}
	if rep.Counter("sim/anneal/runs") != 4 {
		t.Errorf("anneal runs = %d, want 4", rep.Counter("sim/anneal/runs"))
	}
	if rep.Counter("sim/anneal/restarts") != 8 {
		t.Errorf("anneal restarts = %d, want 8", rep.Counter("sim/anneal/restarts"))
	}
	if rep.Counter("sat/propagations") == 0 {
		t.Error("no SAT telemetry recorded")
	}
	if _, err := rep.JSON(); err != nil {
		t.Errorf("concurrent-run report not serializable: %v", err)
	}
}
