// Command table1 regenerates Table 1 of the Bestagon paper: for every
// benchmark of the trindade16 and fontes18 suites it runs the full design
// flow and reports layout dimensions (in hexagonal tiles), SiDB count, and
// area in nm², next to the paper's published values. With -timings (the
// default) each row is followed by a per-stage wall-clock breakdown taken
// from the flow's telemetry tracer.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/logic/bench"
	"repro/internal/obs"
	"repro/internal/pnr"
	"repro/internal/sim"

	// Register the pruned exact ground-state backend for -solver/-cellsim.
	_ "repro/internal/sim/quickexact"
)

func main() {
	var (
		engine        = flag.String("engine", "auto", "physical design engine: auto, exact, ortho")
		budget        = flag.Int64("budget", 0, "SAT conflict budget per exact attempt (0 = default)")
		maxArea       = flag.Int("max-area", 0, "maximum explored tile area for exact search")
		only          = flag.String("only", "", "run a single benchmark")
		timings       = flag.Bool("timings", true, "print per-benchmark stage timings")
		cellSim       = flag.Bool("cellsim", false, "ground-state simulate each final SiDB layout")
		solver        = flag.String("solver", "", "ground-state solver for -cellsim: "+strings.Join(sim.SolverNames(), ", ")+" (default auto)")
		allowDegraded = flag.Bool("allow-degraded", false, "tolerate simulations that silently degraded to annealing (otherwise exit nonzero: degraded data must not pass as exact gate validation)")
	)
	flag.Parse()

	opts := core.Options{
		Exact:        pnr.ExactOptions{ConflictBudget: *budget, MaxArea: *maxArea},
		CellSim:      *cellSim,
		GroundSolver: *solver,
	}
	switch *engine {
	case "auto":
		opts.Engine = core.EngineAuto
	case "exact":
		opts.Engine = core.EngineExact
	case "ortho":
		opts.Engine = core.EngineOrtho
	default:
		fmt.Fprintln(os.Stderr, "unknown engine", *engine)
		os.Exit(1)
	}

	fmt.Println("Table 1: generated layout data (this reproduction vs. paper)")
	fmt.Println()
	fmt.Printf("%-5s %-14s | %-22s | %-22s | %s\n", "", "Name",
		"repro  w x h =  A  SiDBs", "paper  w x h =  A  SiDBs", "repro nm2 / paper nm2")
	fmt.Println(strings.Repeat("-", 96))
	var failed []string
	for _, b := range bench.Benchmarks {
		if *only != "" && b.Name != *only {
			continue
		}
		runOpts := opts
		var tr *obs.Tracer
		if *timings {
			tr = obs.New()
			runOpts.Tracer = tr
		}
		res, err := core.RunBenchmark(b.Name, runOpts)
		if err != nil {
			fmt.Printf("[%s] %-14s | FAILED: %v\n", b.Suite[:4], b.Name, err)
			failed = append(failed, b.Name)
			continue
		}
		l := res.Layout
		fmt.Printf("[%s] %-14s | %2dx%-2d =%3d  %5d SiDBs | %2dx%-2d =%3d  %5d SiDBs | %10.2f / %10.2f  (%s)\n",
			b.Suite[:4], b.Name,
			l.Width(), l.Height(), l.Area(), res.SiDBs,
			b.PaperW, b.PaperH, b.PaperW*b.PaperH, b.PaperSiDBs,
			res.AreaNM2, b.PaperArea, res.EngineUsed)
		if res.CellSim != nil {
			kind := "best-found"
			if res.CellSim.Exact {
				kind = "exact"
			}
			if res.CellSim.Degraded {
				kind = "best-found, DEGRADED"
			}
			fmt.Printf("      cell sim: E = %.6f eV (%s, %s solver, %d free dots)\n",
				res.CellSim.EnergyEV, kind, res.CellSim.Solver, res.CellSim.FreeDots)
		}
		if tr != nil {
			fmt.Printf("      %s\n", stageTimings(tr.Report(b.Name)))
		}
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "table1: %d benchmark(s) failed: %s\n",
			len(failed), strings.Join(failed, ", "))
		os.Exit(1)
	}
	// A degraded simulation means some reported energy is best-found, not
	// provably minimal — data that must not silently certify gate behavior.
	if d := sim.ExhaustiveDegrades.Value() + sim.Degrades.Value(); d > 0 && !*allowDegraded {
		fmt.Fprintf(os.Stderr, "table1: %d simulation(s) degraded to annealing; results are not exact "+
			"(rerun with -allow-degraded to accept best-found energies)\n", d)
		os.Exit(1)
	}
}

// stageTimings renders a compact one-line stage breakdown of a run report.
func stageTimings(rep *obs.RunReport) string {
	var parts []string
	for _, stage := range []string{"rewrite", "mapping", "expand", "pnr", "drc", "verify", "gatelib/apply"} {
		if s := rep.Stage(stage); s != nil {
			parts = append(parts, fmt.Sprintf("%s %.1fms", stage, s.Seconds*1e3))
		}
	}
	total := ""
	if f := rep.Stage("flow"); f != nil {
		total = fmt.Sprintf("  total %.1fms", f.Seconds*1e3)
	}
	if sizes := rep.Counter("pnr/exact/sizes_tried"); sizes > 0 {
		total += fmt.Sprintf("  (exact sizes tried %d, SAT conflicts %d)",
			sizes, rep.Counter("sat/conflicts"))
	}
	return "timings: " + strings.Join(parts, "  ") + total
}
