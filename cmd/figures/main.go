// Command figures regenerates the figures of the Bestagon paper:
//
//	-fig 1c  simulated ground states of the recreated Huff et al. OR gate
//	         (μ_ = -0.28 eV, ε_r = 5.6, λ_TF = 5 nm)
//	-fig 2   clocking by charge-population modulation: a signal moving
//	         through the four phases of a clocked wire
//	-fig 3   Cartesian vs. hexagonal suitability for Y-shaped gates
//	-fig 4   tile template and super-tile grouping under the 40 nm minimum
//	         metal pitch
//	-fig 5   simulation results of the Bestagon gate library
//	         (μ_ = -0.32 eV, ε_r = 5.6, λ_TF = 5 nm)
//	-fig 6   synthesized layout of the par_check benchmark
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/figures"
	"repro/internal/gates"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 1c, 2, 3, 4, 5, 6, od")
	out := flag.String("o", "", "optional output file for generated .sqd data (figs 1c, 6)")
	flag.Parse()

	var err error
	switch *fig {
	case "1c":
		err = figures.Fig1c(os.Stdout, *out)
	case "2":
		err = figures.Fig2(os.Stdout)
	case "3":
		err = figures.Fig3(os.Stdout)
	case "4":
		err = figures.Fig4(os.Stdout)
	case "5":
		err = figures.Fig5(os.Stdout)
	case "6":
		err = figures.Fig6(os.Stdout, *out)
	case "od":
		err = figures.OpDomain(os.Stdout, gates.Wire)
	default:
		fmt.Fprintln(os.Stderr, "usage: figures -fig {1c|2|3|4|5|6|od} [-o file.sqd]")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}
