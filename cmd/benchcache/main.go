// Command benchcache measures the bestagond result cache: it boots an
// in-process service, drives cold and warm passes over the simulation and
// flow endpoints, and writes BENCH_cache.json with per-pass latency, the
// warm/cold speedup, and a byte-identity check between cold and warm
// responses. It exits nonzero when any warm response differs from its
// cold counterpart (the cache must never change an answer) or when any
// request fails.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/service"

	// Register the pruned exact ground-state backend.
	_ "repro/internal/sim/quickexact"
)

// passStats aggregates one endpoint's cold/warm comparison.
type passStats struct {
	Requests      int     `json:"requests"`
	ColdMSTotal   float64 `json:"cold_ms_total"`
	WarmMSTotal   float64 `json:"warm_ms_total"`
	ColdMSMean    float64 `json:"cold_ms_mean"`
	WarmMSMean    float64 `json:"warm_ms_mean"`
	Speedup       float64 `json:"speedup"`
	WarmHits      int     `json:"warm_hits"`
	ByteIdentical bool    `json:"byte_identical"`
}

func (p *passStats) finish() {
	if p.Requests > 0 {
		p.ColdMSMean = p.ColdMSTotal / float64(p.Requests)
		p.WarmMSMean = p.WarmMSTotal / float64(p.Requests)
	}
	if p.WarmMSTotal > 0 {
		p.Speedup = p.ColdMSTotal / p.WarmMSTotal
	}
}

type benchReport struct {
	Simulate passStats `json:"simulate"`
	Flow     passStats `json:"flow"`
	Cache    struct {
		Hits    int64   `json:"hits"`
		Misses  int64   `json:"misses"`
		Entries int64   `json:"entries"`
		Bytes   int64   `json:"bytes"`
		HitRate float64 `json:"hit_rate"`
	} `json:"cache"`
	OverallSpeedup float64 `json:"overall_speedup"`
}

func main() {
	var (
		out     = flag.String("o", "BENCH_cache.json", "output report file")
		flows   = flag.String("flows", "xor2,mux21,majority", "comma-separated benchmarks for the flow pass")
		verbose = flag.Bool("v", false, "print each request")
	)
	flag.Parse()

	srv, err := service.New(service.Config{Workers: 1})
	if err != nil {
		fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var rep benchReport
	ok := true

	// Simulation pass: every library gate tile, cold then warm.
	gates, err := listGates(ts.URL)
	if err != nil {
		fatal(err)
	}
	simBodies := make([]json.RawMessage, 0, len(gates))
	for _, g := range gates {
		payload := map[string]any{"gate": g}
		body, ms, _, err := post(ts.URL+"/v1/simulate", payload)
		if err != nil {
			fatal(fmt.Errorf("cold simulate %s: %w", g, err))
		}
		rep.Simulate.ColdMSTotal += ms
		simBodies = append(simBodies, body)
		if *verbose {
			fmt.Fprintf(os.Stderr, "cold simulate %-24s %8.2fms\n", g, ms)
		}
	}
	rep.Simulate.ByteIdentical = true
	for i, g := range gates {
		body, ms, hit, err := post(ts.URL+"/v1/simulate", map[string]any{"gate": g})
		if err != nil {
			fatal(fmt.Errorf("warm simulate %s: %w", g, err))
		}
		rep.Simulate.WarmMSTotal += ms
		if hit {
			rep.Simulate.WarmHits++
		}
		if !bytes.Equal(body, simBodies[i]) {
			fmt.Fprintf(os.Stderr, "benchcache: FAIL: warm simulate %s differs from cold response\n", g)
			rep.Simulate.ByteIdentical = false
			ok = false
		}
	}
	rep.Simulate.Requests = len(gates)
	rep.Simulate.finish()

	// Flow pass: full flow with SiQAD export, cold then warm.
	var benches []string
	for _, b := range splitComma(*flows) {
		benches = append(benches, b)
	}
	flowBodies := make([]json.RawMessage, 0, len(benches))
	for _, b := range benches {
		payload := map[string]any{"bench": b, "engine": "ortho", "sqd": true}
		body, ms, _, err := post(ts.URL+"/v1/flow", payload)
		if err != nil {
			fatal(fmt.Errorf("cold flow %s: %w", b, err))
		}
		rep.Flow.ColdMSTotal += ms
		flowBodies = append(flowBodies, body)
		if *verbose {
			fmt.Fprintf(os.Stderr, "cold flow     %-24s %8.2fms\n", b, ms)
		}
	}
	rep.Flow.ByteIdentical = true
	for i, b := range benches {
		payload := map[string]any{"bench": b, "engine": "ortho", "sqd": true}
		body, ms, hit, err := post(ts.URL+"/v1/flow", payload)
		if err != nil {
			fatal(fmt.Errorf("warm flow %s: %w", b, err))
		}
		rep.Flow.WarmMSTotal += ms
		if hit {
			rep.Flow.WarmHits++
		}
		if !bytes.Equal(body, flowBodies[i]) {
			fmt.Fprintf(os.Stderr, "benchcache: FAIL: warm flow %s differs from cold response\n", b)
			rep.Flow.ByteIdentical = false
			ok = false
		}
	}
	rep.Flow.Requests = len(benches)
	rep.Flow.finish()

	st := srv.CacheStats()
	rep.Cache.Hits = st.Hits
	rep.Cache.Misses = st.Misses
	rep.Cache.Entries = st.Entries
	rep.Cache.Bytes = st.Bytes
	rep.Cache.HitRate = st.HitRate()
	if warm := rep.Simulate.WarmMSTotal + rep.Flow.WarmMSTotal; warm > 0 {
		rep.OverallSpeedup = (rep.Simulate.ColdMSTotal + rep.Flow.ColdMSTotal) / warm
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchcache: simulate %d gates: cold %.1fms warm %.1fms (%.0fx)\n",
		rep.Simulate.Requests, rep.Simulate.ColdMSTotal, rep.Simulate.WarmMSTotal, rep.Simulate.Speedup)
	fmt.Printf("benchcache: flow %d benches:  cold %.1fms warm %.1fms (%.0fx)\n",
		rep.Flow.Requests, rep.Flow.ColdMSTotal, rep.Flow.WarmMSTotal, rep.Flow.Speedup)
	fmt.Printf("benchcache: overall %.0fx speedup, byte-identical: %v, wrote %s\n",
		rep.OverallSpeedup, rep.Simulate.ByteIdentical && rep.Flow.ByteIdentical, *out)
	if !ok {
		os.Exit(1)
	}
}

// post sends a JSON request and returns (body, elapsed ms, cache hit).
func post(url string, payload any) (json.RawMessage, float64, bool, error) {
	b, err := json.Marshal(payload)
	if err != nil {
		return nil, 0, false, err
	}
	start := time.Now()
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return nil, 0, false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	elapsed := float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		return nil, elapsed, false, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, elapsed, false, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return body, elapsed, resp.Header.Get("X-Cache") == "hit", nil
}

func listGates(base string) ([]string, error) {
	resp, err := http.Get(base + "/v1/gates")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out struct {
		Gates []string `json:"gates"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Gates, nil
}

func splitComma(s string) []string {
	var out []string
	for _, p := range bytes.Split([]byte(s), []byte(",")) {
		if t := bytes.TrimSpace(p); len(t) > 0 {
			out = append(out, string(t))
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcache:", err)
	os.Exit(1)
}
