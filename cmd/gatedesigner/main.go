// Command gatedesigner regenerates the Bestagon gate cores: it runs the
// simulation-driven design search (the paper's RL-agent substitute, see
// DESIGN.md §4) for a chosen tile function and prints the resulting canvas
// dot placements as Go literals for internal/gatelib/designs.go.
//
// Usage:
//
//	gatedesigner -gate XOR -seed 1 -restarts 16 -iterations 300
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/designer"
	"repro/internal/gatelib"
	"repro/internal/lattice"
	"repro/internal/sidb"
	"repro/internal/sim"

	// Register the pruned exact ground-state backend for -solver.
	_ "repro/internal/sim/quickexact"
)

func main() {
	var (
		gate       = flag.String("gate", "", "target: AND, OR, NAND, NOR, XOR, XNOR, INV, FANOUT, CROSS, HA")
		seed       = flag.Int64("seed", 1, "search seed")
		restarts   = flag.Int("restarts", 16, "search restarts")
		iterations = flag.Int("iterations", 300, "local moves per restart")
		maxDots    = flag.Int("max-dots", 4, "maximum canvas dots")
		mu         = flag.Float64("mu", sim.ParamsFig5.MuMinus, "transition level mu_ in eV")
		solver     = flag.String("solver", "", "ground-state solver for candidate evaluation: "+strings.Join(sim.SolverNames(), ", ")+" (default auto)")
	)
	flag.Parse()

	params := sim.ParamsFig5
	params.MuMinus = *mu

	tpl, err := template(*gate, params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gatedesigner:", err)
		os.Exit(2)
	}
	if _, err := sim.Lookup(*solver); err != nil {
		fmt.Fprintln(os.Stderr, "gatedesigner:", err)
		os.Exit(2)
	}
	tpl.Solver = *solver
	cands := designer.Grid(20, 12, 40, 32, 2, tpl.Fixed, 0.6)
	opts := designer.Options{
		Seed: *seed, Restarts: *restarts, Iterations: *iterations,
		MaxDots: *maxDots,
	}
	fmt.Printf("searching %s over %d candidate sites (seed %d) ...\n", *gate, len(cands), *seed)
	best, err := designer.Search(tpl, cands, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gatedesigner: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("found placement: %d/%d patterns, min gap %.4f eV\n", best.Correct, best.Patterns, best.MinGap)
	fmt.Printf("canvas%s = []lattice.Site{", *gate)
	for i, s := range best.Canvas {
		if i > 0 {
			fmt.Print(", ")
		}
		x, y := s.Cell()
		fmt.Printf("c(%d, %d)", x, y)
	}
	fmt.Println("}")
}

// template builds the short-model search template for a target gate.
func template(gate string, params sim.Params) (*designer.Template, error) {
	mk := func(nIn int, outSW, outSE bool, truth func(uint32) uint32) *designer.Template {
		return gatelib.SearchTemplate(nIn, outSW, outSE, truth, params)
	}
	switch gate {
	case "AND":
		return mk(2, false, true, func(i uint32) uint32 { return i & (i >> 1) & 1 }), nil
	case "OR":
		return mk(2, false, true, func(i uint32) uint32 {
			if i != 0 {
				return 1
			}
			return 0
		}), nil
	case "NAND":
		return mk(2, false, true, func(i uint32) uint32 { return (i & (i >> 1) & 1) ^ 1 }), nil
	case "NOR":
		return mk(2, false, true, func(i uint32) uint32 {
			if i == 0 {
				return 1
			}
			return 0
		}), nil
	case "XOR":
		return mk(2, false, true, func(i uint32) uint32 { return (i ^ i>>1) & 1 }), nil
	case "XNOR":
		return mk(2, false, true, func(i uint32) uint32 { return ((i ^ i>>1) & 1) ^ 1 }), nil
	case "INV":
		return mk(1, false, true, func(i uint32) uint32 { return i ^ 1 }), nil
	case "FANOUT":
		return mk(1, true, true, func(i uint32) uint32 { return i * 3 }), nil
	case "CROSS":
		return mk(2, true, true, func(i uint32) uint32 { return (i>>1)&1 | (i&1)<<1 }), nil
	case "HA":
		return mk(2, true, true, func(i uint32) uint32 {
			return (i^i>>1)&1 | (i&(i>>1)&1)<<1
		}), nil
	default:
		return nil, fmt.Errorf("unknown gate %q", gate)
	}
}

// silence potential unused imports in future edits.
var _ = sidb.RoleNormal
var _ = lattice.PitchX
