// Command bestagon runs the complete Bestagon design flow: it reads a
// logic specification (.bench or structural Verilog, or a named built-in
// benchmark), performs logic rewriting, technology mapping, placement &
// routing on a hexagonal row-clocked floor plan, formal verification,
// super-tile merging, gate-library application, and SiQAD export.
//
// Usage:
//
//	bestagon -bench c17 -o c17.sqd
//	bestagon -in design.bench -engine exact -o out.sqd
//	bestagon -in design.v -render
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/gates"
	"repro/internal/logic/bench"
	"repro/internal/logic/network"
)

func main() {
	var (
		inFile    = flag.String("in", "", "input specification file (.bench or .v)")
		benchName = flag.String("bench", "", "built-in Table 1 benchmark name")
		engine    = flag.String("engine", "auto", "physical design engine: auto, exact, ortho")
		out       = flag.String("o", "", "output SiQAD .sqd file")
		render    = flag.Bool("render", false, "print the gate-level layout as ASCII art")
		noRewrite = flag.Bool("no-rewrite", false, "skip the logic rewriting step")
		gateLevel = flag.Bool("gate-level", false, "stop after verification (no cell-level layout)")
		list      = flag.Bool("list", false, "list built-in benchmarks and exit")
	)
	flag.Parse()

	if *list {
		for _, b := range bench.Benchmarks {
			fmt.Printf("%-16s %-12s paper: %dx%d, %d SiDBs, %.2f nm2\n",
				b.Name, b.Suite, b.PaperW, b.PaperH, b.PaperSiDBs, b.PaperArea)
		}
		return
	}

	x, err := loadSpec(*inFile, *benchName)
	if err != nil {
		fatal(err)
	}

	opts := core.Options{SkipRewrite: *noRewrite, SkipCellLevel: *gateLevel}
	switch *engine {
	case "auto":
		opts.Engine = core.EngineAuto
	case "exact":
		opts.Engine = core.EngineExact
	case "ortho":
		opts.Engine = core.EngineOrtho
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}

	res, err := core.Run(x, opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("specification : %v\n", res.Spec)
	fmt.Printf("rewritten     : %v\n", res.Rewritten)
	fmt.Printf("mapped        : %v\n", res.Mapped)
	fmt.Printf("layout        : %v [%s engine]\n", res.Layout, res.EngineUsed)
	fmt.Printf("verification  : equivalent (SAT, %d conflicts)\n", res.Verification.Conflicts)
	fmt.Printf("super-tiles   : %d rows per clock electrode (%.2f nm pitch)\n",
		res.SuperTiles.RowsPerSuperTile, res.SuperTiles.PitchNM)
	fmt.Printf("area          : %.2f nm2 (%dx%d tiles)\n", res.AreaNM2, res.Layout.Width(), res.Layout.Height())
	if res.CellLayout != nil {
		fmt.Printf("SiDBs         : %d\n", res.SiDBs)
	}
	counts := res.Layout.GateCounts()
	var parts []string
	for _, f := range gates.All() {
		if n := counts[f]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", f, n))
		}
	}
	fmt.Printf("tiles         : %s\n", strings.Join(parts, " "))

	if *render {
		fmt.Println()
		fmt.Println(res.Layout.Render())
	}
	if *out != "" {
		doc, err := res.ExportSQD()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, []byte(doc), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote         : %s\n", *out)
	}
}

// loadSpec loads the requested specification.
func loadSpec(inFile, benchName string) (*network.XAG, error) {
	switch {
	case benchName != "":
		return bench.Load(benchName)
	case inFile != "":
		data, err := os.ReadFile(inFile)
		if err != nil {
			return nil, err
		}
		name := strings.TrimSuffix(filepath.Base(inFile), filepath.Ext(inFile))
		if strings.HasSuffix(inFile, ".v") {
			return bench.ParseVerilog(string(data))
		}
		return bench.ParseBench(name, string(data))
	default:
		return nil, fmt.Errorf("specify -in FILE or -bench NAME (see -list)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bestagon:", err)
	os.Exit(1)
}
