// Command bestagon runs the complete Bestagon design flow: it reads a
// logic specification (.bench or structural Verilog, or a named built-in
// benchmark), performs logic rewriting, technology mapping, placement &
// routing on a hexagonal row-clocked floor plan, formal verification,
// super-tile merging, gate-library application, and SiQAD export.
//
// Usage:
//
//	bestagon -bench c17 -o c17.sqd
//	bestagon -in design.bench -engine exact -o out.sqd
//	bestagon -in design.v -render
//	bestagon -bench c17 -trace -report c17-report.json
//	bestagon -bench mux21 -o - | siqad-import   # .sqd on stdout, pipeable
//
// Diagnostics always go to stderr. The run summary goes to stdout unless
// machine-readable output was directed there (-o - or -report -), in which
// case the summary moves to stderr so the pipe stays clean.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/core"
	"repro/internal/gates"
	"repro/internal/logic/bench"
	"repro/internal/logic/network"
	"repro/internal/obs"
	"repro/internal/sim"

	// Register the pruned exact ground-state backend for -solver/-cellsim.
	_ "repro/internal/sim/quickexact"
)

func main() {
	var (
		inFile    = flag.String("in", "", "input specification file (.bench or .v)")
		benchName = flag.String("bench", "", "built-in Table 1 benchmark name")
		engine    = flag.String("engine", "auto", "physical design engine: auto, exact, ortho")
		out       = flag.String("o", "", "output SiQAD .sqd file ('-' for stdout)")
		render    = flag.Bool("render", false, "print the gate-level layout as ASCII art")
		noRewrite = flag.Bool("no-rewrite", false, "skip the logic rewriting step")
		gateLevel = flag.Bool("gate-level", false, "stop after verification (no cell-level layout)")
		list      = flag.Bool("list", false, "list built-in benchmarks and exit")
		cellSim   = flag.Bool("cellsim", false, "ground-state simulate the final SiDB layout (flow step 7 1/2)")
		solver    = flag.String("solver", "", "ground-state solver for -cellsim: "+strings.Join(sim.SolverNames(), ", ")+" (default auto)")
		trace     = flag.Bool("trace", false, "print the per-stage timing tree to stderr")
		report    = flag.String("report", "", "write a machine-readable JSON run report to FILE ('-' for stdout)")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile to FILE")
		memprof   = flag.String("memprofile", "", "write a heap profile to FILE")
	)
	flag.Parse()

	if *list {
		for _, b := range bench.Benchmarks {
			fmt.Printf("%-16s %-12s paper: %dx%d, %d SiDBs, %.2f nm2\n",
				b.Name, b.Suite, b.PaperW, b.PaperH, b.PaperSiDBs, b.PaperArea)
		}
		return
	}

	// The summary goes to stdout unless machine-readable output claims it.
	var msg io.Writer = os.Stdout
	if *out == "-" || *report == "-" {
		msg = os.Stderr
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	x, err := loadSpec(*inFile, *benchName)
	if err != nil {
		fatal(err)
	}

	opts := core.Options{
		SkipRewrite:   *noRewrite,
		SkipCellLevel: *gateLevel,
		CellSim:       *cellSim,
		GroundSolver:  *solver,
	}
	switch *engine {
	case "auto":
		opts.Engine = core.EngineAuto
	case "exact":
		opts.Engine = core.EngineExact
	case "ortho":
		opts.Engine = core.EngineOrtho
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}

	// A tracer is only attached when telemetry was requested; library users
	// and plain runs keep the free nil-tracer path.
	var tr *obs.Tracer
	if *trace || *report != "" {
		tr = obs.New()
		opts.Tracer = tr
	}

	res, err := core.Run(x, opts)
	if err != nil {
		emitTelemetry(tr, x.Name, *trace, *report)
		fatal(err)
	}

	fmt.Fprintf(msg, "specification : %v\n", res.Spec)
	fmt.Fprintf(msg, "rewritten     : %v\n", res.Rewritten)
	fmt.Fprintf(msg, "mapped        : %v\n", res.Mapped)
	fmt.Fprintf(msg, "layout        : %v [%s engine]\n", res.Layout, res.EngineUsed)
	fmt.Fprintf(msg, "verification  : equivalent (SAT, %d conflicts)\n", res.Verification.Conflicts)
	fmt.Fprintf(msg, "super-tiles   : %d rows per clock electrode (%.2f nm pitch)\n",
		res.SuperTiles.RowsPerSuperTile, res.SuperTiles.PitchNM)
	fmt.Fprintf(msg, "area          : %.2f nm2 (%dx%d tiles)\n", res.AreaNM2, res.Layout.Width(), res.Layout.Height())
	if res.CellLayout != nil {
		fmt.Fprintf(msg, "SiDBs         : %d\n", res.SiDBs)
	}
	if res.CellSim != nil {
		kind := "best-found"
		if res.CellSim.Exact {
			kind = "exact"
		}
		fmt.Fprintf(msg, "cell sim      : E = %.6f eV (%s, %s solver, %d free dots)\n",
			res.CellSim.EnergyEV, kind, res.CellSim.Solver, res.CellSim.FreeDots)
	}
	counts := res.Layout.GateCounts()
	var parts []string
	for _, f := range gates.All() {
		if n := counts[f]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", f, n))
		}
	}
	fmt.Fprintf(msg, "tiles         : %s\n", strings.Join(parts, " "))

	if *render {
		fmt.Fprintln(msg)
		fmt.Fprintln(msg, res.Layout.Render())
	}
	if *out != "" {
		doc, err := res.ExportSQD()
		if err != nil {
			fatal(err)
		}
		if *out == "-" {
			fmt.Print(doc)
		} else {
			if err := os.WriteFile(*out, []byte(doc), 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "bestagon: wrote %s\n", *out)
		}
	}

	emitTelemetry(tr, x.Name, *trace, *report)

	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

// emitTelemetry renders the -trace tree and writes the -report file. It is
// also called on flow errors so partial telemetry is never lost.
func emitTelemetry(tr *obs.Tracer, name string, trace bool, reportPath string) {
	if tr == nil {
		return
	}
	rep := tr.Report(name)
	if trace {
		fmt.Fprint(os.Stderr, rep.RenderTree())
	}
	if reportPath == "" {
		return
	}
	data, err := rep.JSON()
	if err != nil {
		fatal(err)
	}
	if reportPath == "-" {
		fmt.Printf("%s\n", data)
		return
	}
	if err := os.WriteFile(reportPath, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bestagon: wrote %s\n", reportPath)
}

// loadSpec loads the requested specification.
func loadSpec(inFile, benchName string) (*network.XAG, error) {
	switch {
	case benchName != "":
		return bench.Load(benchName)
	case inFile != "":
		data, err := os.ReadFile(inFile)
		if err != nil {
			return nil, err
		}
		name := strings.TrimSuffix(filepath.Base(inFile), filepath.Ext(inFile))
		if strings.HasSuffix(inFile, ".v") {
			return bench.ParseVerilog(string(data))
		}
		return bench.ParseBench(name, string(data))
	default:
		return nil, fmt.Errorf("specify -in FILE or -bench NAME (see -list)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bestagon:", err)
	os.Exit(1)
}
