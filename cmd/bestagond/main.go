// Command bestagond runs the Bestagon design flow as a long-running HTTP
// service: a JSON API over flow runs, ground-state simulation, and gate
// validation, backed by a bounded job queue with a worker pool,
// content-addressed result caching, and flow-wide cooperative
// cancellation (per-job deadlines, client disconnects, graceful drain).
//
// Usage:
//
//	bestagond                                 # listen on :8711, 2 workers
//	bestagond -addr :9000 -workers 8
//	bestagond -cache-size 256 -cache-dir /var/cache/bestagond
//	bestagond -solver quickexact -job-timeout 5m
//	bestagond -report server-report.json      # written on shutdown
//
// Endpoints:
//
//	POST   /v1/flow            run the full flow (sync, or async with job id)
//	POST   /v1/simulate        ground-state simulate a gate tile or dot list
//	POST   /v1/gates/validate  validate a library tile against its truth table
//	GET    /v1/gates           list library variant keys
//	GET    /v1/jobs/{id}       job status (and result once done)
//	DELETE /v1/jobs/{id}       cancel a job
//	GET    /healthz            liveness
//	GET    /metrics            plain-text metrics (cache, queue, solvers)
//
// On SIGINT/SIGTERM the listener stops accepting requests and in-flight
// jobs are drained; jobs still running when the grace period expires are
// canceled mid-search (the SAT, branch-and-bound, and annealing loops all
// honor cancellation).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sim"

	// Register the pruned exact ground-state backend for -solver.
	_ "repro/internal/sim/quickexact"
)

func main() {
	var (
		addr       = flag.String("addr", ":8711", "listen address")
		workers    = flag.Int("workers", 2, "job worker pool size")
		queueDepth = flag.Int("queue-depth", 0, "queued-job bound (default 4*workers); full queue returns 429")
		jobTimeout = flag.Duration("job-timeout", 10*time.Minute, "default per-job deadline (0 = none); requests may shorten it via timeout_ms")
		cacheSize  = flag.Int64("cache-size", 64, "in-memory result cache bound in MiB")
		cacheDir   = flag.String("cache-dir", "", "directory for the persistent flow-artifact cache (empty = memory only)")
		solver     = flag.String("solver", "", "default ground-state solver: "+strings.Join(sim.SolverNames(), ", ")+" (default auto)")
		drainGrace = flag.Duration("drain-grace", 30*time.Second, "shutdown grace period before in-flight jobs are canceled")
		trace      = flag.Bool("trace", false, "log request/job activity to stderr")
		report     = flag.String("report", "", "write a JSON metrics report to FILE on shutdown ('-' for stdout)")
	)
	flag.Parse()

	tr := obs.New()
	srv, err := service.New(service.Config{
		Workers:    *workers,
		QueueDepth: *queueDepth,
		JobTimeout: *jobTimeout,
		CacheBytes: *cacheSize << 20,
		CacheDir:   *cacheDir,
		Solver:     *solver,
		Tracer:     tr,
	})
	if err != nil {
		fatal(err)
	}

	handler := srv.Handler()
	if *trace {
		handler = logRequests(handler)
	}
	hs := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "bestagond: listening on %s (%d workers)\n", *addr, *workers)
		errCh <- hs.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "bestagond: shutdown signal received; draining")
	case err := <-errCh:
		fatal(err)
	}

	// Stop accepting connections, then drain the job queue. Jobs still
	// running when the grace period expires are canceled cooperatively.
	grace, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := hs.Shutdown(grace); err != nil {
		fmt.Fprintf(os.Stderr, "bestagond: http shutdown: %v\n", err)
	}
	if err := srv.Drain(grace); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "bestagond: drain: %v\n", err)
	} else if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "bestagond: drain grace expired; in-flight jobs were canceled")
	}

	if *report != "" {
		data, err := tr.Report("bestagond").JSON()
		if err != nil {
			fatal(err)
		}
		if *report == "-" {
			fmt.Printf("%s\n", data)
		} else if err := os.WriteFile(*report, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		} else {
			fmt.Fprintf(os.Stderr, "bestagond: wrote %s\n", *report)
		}
	}
	st := srv.CacheStats()
	fmt.Fprintf(os.Stderr, "bestagond: cache at exit: %d entries, %d bytes, %.0f%% hit rate\n",
		st.Entries, st.Bytes, 100*st.HitRate())
}

// logRequests is the -trace middleware: one stderr line per request.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		fmt.Fprintf(os.Stderr, "bestagond: %s %s (%s)\n", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bestagond:", err)
	os.Exit(1)
}
