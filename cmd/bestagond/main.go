// Command bestagond runs the Bestagon design flow as a long-running HTTP
// service: a JSON API over flow runs, ground-state simulation, and gate
// validation, backed by a bounded job queue with a worker pool,
// content-addressed result caching, and flow-wide cooperative
// cancellation (per-job deadlines, client disconnects, graceful drain).
//
// Usage:
//
//	bestagond                                 # listen on :8711, 2 workers
//	bestagond -addr :9000 -workers 8
//	bestagond -cache-size 256 -cache-dir /var/cache/bestagond
//	bestagond -journal-dir /var/lib/bestagond/journal -recover resubmit
//	bestagond -solver quickexact -job-timeout 5m
//	bestagond -log-level debug                # structured request logs
//	bestagond -pprof-addr localhost:6060      # live profiling endpoint
//	bestagond -report server-report.json      # written on shutdown
//	bestagond -faults 'cache.disk.read=p:0.2' # chaos testing (see internal/faults)
//
// Endpoints:
//
//	POST   /v1/flow            run the full flow (sync, or async with job id)
//	POST   /v1/simulate        ground-state simulate a gate tile or dot list
//	POST   /v1/gates/validate  validate a library tile against its truth table
//	POST   /v1/batch           canonicalize, deduplicate, and fan out sub-requests in one job
//	GET    /v1/gates           list library variant keys
//	GET    /v1/jobs/{id}       job status (and result once done)
//	GET    /v1/jobs/{id}/trace per-job stage timeline (spans + attributes)
//	DELETE /v1/jobs/{id}       cancel a job
//	GET    /v1/traces/{id}     retained trace by job or request id (stitched across the fleet)
//	GET    /v1/cluster/overview  fleet-wide saturation/cache/SLO overview from any member
//	GET    /debug/flightrecorder  flight-recorder summary (retained trace headers)
//	GET    /healthz            liveness + saturation/latency/SLO snapshot (and cluster state)
//	GET    /metrics            Prometheus text exposition
//	GET/PUT /internal/cache/{key}  peer-cache protocol (fleet mode; secret or loopback only)
//	GET    /internal/trace/{id}    peer trace lookup for stitching (fleet mode)
//	GET    /internal/stats         peer stats snapshot for the overview plane (fleet mode)
//
// Fleet mode (-peers) turns a set of replicas into a cluster: consistent
// hashing over the canonical cache keys routes each request to its owner
// replica, local misses consult the owner's cache before solving, and
// concurrent identical requests fleet-wide coalesce onto one solve.
// Request ids and span parents propagate on every intra-fleet hop, so
// traces stitch across replicas and logs correlate by X-Request-Id:
//
//	bestagond -addr :8711 -peers 127.0.0.1:8712,127.0.0.1:8713 -cluster-secret s3cret
//
// On SIGINT/SIGTERM the listener stops accepting requests and in-flight
// jobs are drained; jobs still running when the grace period expires are
// canceled mid-search (the SAT, branch-and-bound, and annealing loops all
// honor cancellation).
//
// With -journal-dir set, every submission is fsynced to a write-ahead
// journal before its job id is returned. After a crash (SIGKILL, OOM,
// power loss) the journal replays on restart, so every pre-crash job id
// still answers on /v1/jobs/{id}: as failed with error_kind
// "interrupted" by default, or — with -recover resubmit — as a
// re-enqueued run of the journaled request bytes under the same id.
// Client retries can reattach to submissions via an Idempotency-Key
// request header.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/obs/obslog"
	"repro/internal/service"
	"repro/internal/sim"

	// Register the pruned exact ground-state backend for -solver.
	_ "repro/internal/sim/quickexact"
)

func main() {
	var (
		addr       = flag.String("addr", ":8711", "listen address")
		workers    = flag.Int("workers", 2, "job worker pool size")
		queueDepth = flag.Int("queue-depth", 0, "queued-job bound (default 4*workers); full queue returns 429")
		jobTimeout = flag.Duration("job-timeout", 10*time.Minute, "default per-job deadline (0 = none); requests may shorten it via timeout_ms")
		cacheSize  = flag.Int64("cache-size", 64, "in-memory result cache bound in MiB")
		cacheDir   = flag.String("cache-dir", "", "directory for the persistent flow-artifact cache (empty = memory only)")
		journalDir = flag.String("journal-dir", "", "directory for the write-ahead job journal (empty = jobs are lost on crash)")
		recovMode  = flag.String("recover", "fail", "what to do with jobs the journal shows queued/running at crash: fail (surface as error_kind interrupted) or resubmit (re-enqueue from journaled request bytes)")
		solver     = flag.String("solver", "", "default ground-state solver: "+strings.Join(sim.SolverNames(), ", ")+" (default auto)")
		drainGrace = flag.Duration("drain-grace", 30*time.Second, "shutdown grace period before in-flight jobs are canceled")
		logLevel   = flag.String("log-level", "info", "structured log threshold: debug, info, warn, error")
		trace      = flag.Bool("trace", false, "alias for -log-level debug")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)")
		maxBody    = flag.Int64("max-body", 1, "request body bound in MiB (oversized bodies get 413)")
		report     = flag.String("report", "", "write a JSON metrics report to FILE on shutdown ('-' for stdout)")

		faultSpec     = flag.String("faults", "", "arm fault injection, e.g. 'cache.disk.read=p:0.2;service.job.panic=n:5' (also via BESTAGOND_FAULTS); chaos testing only")
		faultSeed     = flag.Int64("faults-seed", 1, "seed for probabilistic fault triggers (deterministic replay)")
		maxRetries    = flag.Int("max-retries", 2, "retries for transient disk-cache I/O failures (negative = none); repeated failures trip the breaker to memory-only caching")
		degradeMargin = flag.Duration("degrade-margin", sim.DefaultDegradeMargin, "budget reserved for cheaper fallback engines under a job deadline (solver degradation ladder)")
		sloShort      = flag.Duration("slo-short-window", 5*time.Minute, "short SLO burn-rate window")
		sloLong       = flag.Duration("slo-long-window", time.Hour, "long SLO burn-rate window")

		peers         = flag.String("peers", "", "comma-separated peer addresses (host:port) for fleet mode; empty = single replica")
		selfAddr      = flag.String("self", "", "this replica's advertised address (default 127.0.0.1<addr> when -addr is :port)")
		clusterSecret = flag.String("cluster-secret", "", "shared secret guarding the peer-cache protocol (also via BESTAGOND_CLUSTER_SECRET); empty = loopback peers only")
		probeInterval = flag.Duration("probe-interval", time.Second, "peer health-probe period in fleet mode")
	)
	flag.Parse()

	level, err := obslog.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	if *trace {
		level = obslog.LevelDebug
	}
	logger := obslog.New(os.Stderr, level).With(obslog.F("service", "bestagond"))

	tr := obs.New()

	// Fault injection (chaos testing): the flag wins over the environment
	// variable so a one-off run can override a deployment-wide setting.
	spec := *faultSpec
	if spec == "" {
		spec = os.Getenv("BESTAGOND_FAULTS")
	}
	if spec != "" {
		if err := faults.Arm(spec, *faultSeed); err != nil {
			fatal(err)
		}
		tr.Gauge("faults/armed").Set(1)
		logger.Warn("faults_armed", obslog.F("spec", spec), obslog.F("seed", *faultSeed))
	}

	// Fleet mode: a static peer list makes this replica part of a cluster
	// with consistent-hash ownership, a peer cache tier, and fleet-wide
	// single-flight deduplication (see internal/cluster).
	var clusterCfg *cluster.Config
	if *peers != "" {
		self := *selfAddr
		if self == "" {
			if strings.HasPrefix(*addr, ":") {
				self = "127.0.0.1" + *addr
			} else if host, _, err := net.SplitHostPort(*addr); err == nil && host != "" && host != "0.0.0.0" && host != "::" {
				self = *addr
			} else {
				fatal(fmt.Errorf("-self is required when -addr (%q) has no concrete host", *addr))
			}
		}
		secret := *clusterSecret
		if secret == "" {
			secret = os.Getenv("BESTAGOND_CLUSTER_SECRET")
		}
		clusterCfg = &cluster.Config{
			Self:          self,
			Peers:         strings.Split(*peers, ","),
			Secret:        secret,
			ProbeInterval: *probeInterval,
		}
		logger.Info("cluster_enabled",
			obslog.F("self", self),
			obslog.F("peers", *peers),
			obslog.F("secured", secret != ""))
	}

	srv, err := service.New(service.Config{
		Workers:       *workers,
		QueueDepth:    *queueDepth,
		JobTimeout:    *jobTimeout,
		CacheBytes:    *cacheSize << 20,
		CacheDir:      *cacheDir,
		Solver:        *solver,
		Tracer:        tr,
		Logger:        logger,
		MaxBodyBytes:  *maxBody << 20,
		MaxRetries:    *maxRetries,
		DegradeMargin: *degradeMargin,
		SLOWindows:    []time.Duration{*sloShort, *sloLong},
		Cluster:       clusterCfg,
		JournalDir:    *journalDir,
		RecoverMode:   *recovMode,
		DrainGrace:    *drainGrace,
	})
	if err != nil {
		fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// The profiler listens on its own (ideally loopback-only) address so
	// the pprof handlers never ride on the public API listener.
	if *pprofAddr != "" {
		go func() {
			logger.Info("pprof_listening", obslog.F("addr", *pprofAddr))
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Error("pprof_server_failed", obslog.Err(err))
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", obslog.F("addr", *addr), obslog.F("workers", *workers))
		errCh <- hs.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		logger.Info("shutdown_signal", obslog.F("grace", drainGrace.String()))
	case err := <-errCh:
		fatal(err)
	}

	// Stop accepting connections, then drain the job queue. Jobs still
	// running when the grace period expires are canceled cooperatively.
	grace, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := hs.Shutdown(grace); err != nil {
		logger.Warn("http_shutdown", obslog.Err(err))
	}
	if err := srv.Drain(grace); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("drain_failed", obslog.Err(err))
	} else if errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("drain_grace_expired")
	}

	if *report != "" {
		data, err := tr.Report("bestagond").JSON()
		if err != nil {
			fatal(err)
		}
		if *report == "-" {
			fmt.Printf("%s\n", data)
		} else if err := os.WriteFile(*report, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		} else {
			logger.Info("report_written", obslog.F("file", *report))
		}
	}
	st := srv.CacheStats()
	logger.Info("exit",
		obslog.F("cache_entries", st.Entries),
		obslog.F("cache_bytes", st.Bytes),
		obslog.F("cache_hit_rate", st.HitRate()))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bestagond:", err)
	os.Exit(1)
}
