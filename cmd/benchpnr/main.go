// Command benchpnr measures the exact place-and-route engine's SAT
// solve-time curve: for each benchmark netlist it runs the front end
// (rewrite, technology mapping, graph expansion) and then the exact P&R
// size search under a tracer, harvesting the per-aspect-ratio solve rows
// the search records (grid dimensions, SAT/UNSAT status, conflicts,
// decisions, propagations, restarts, seconds) into BENCH_pnr.json. The
// per-ratio curve is the paper's Table 1 story told per SAT call: how the
// UNSAT ramp dominates until the first satisfiable area is hit.
//
//	go run ./cmd/benchpnr
//	make bench-pnr
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/gatelayout"
	"repro/internal/logic/bench"
	"repro/internal/logic/mapping"
	"repro/internal/logic/rewrite"
	"repro/internal/obs"
	"repro/internal/pnr"
)

// sizeRow is one per-aspect-ratio SAT call of the size search.
type sizeRow struct {
	W            int     `json:"w"`
	H            int     `json:"h"`
	Status       string  `json:"status"`
	Pruned       bool    `json:"pruned,omitempty"`
	Vars         int64   `json:"vars,omitempty"`
	Clauses      int64   `json:"clauses,omitempty"`
	Conflicts    int64   `json:"conflicts"`
	Decisions    int64   `json:"decisions"`
	Propagations int64   `json:"propagations"`
	Restarts     int64   `json:"restarts"`
	SolveSeconds float64 `json:"solve_seconds"`
	SpanSeconds  float64 `json:"span_seconds"`
}

// benchRow is the per-benchmark report entry.
type benchRow struct {
	Bench        string    `json:"bench"`
	OK           bool      `json:"ok"`
	Error        string    `json:"error,omitempty"`
	Gates        int       `json:"gates,omitempty"`
	Width        int       `json:"width,omitempty"`
	Height       int       `json:"height,omitempty"`
	TotalSeconds float64   `json:"total_seconds"`
	SizesTried   int64     `json:"sizes_tried"`
	SizesPruned  int64     `json:"sizes_pruned"`
	Conflicts    int64     `json:"sat_conflicts"`
	Decisions    int64     `json:"sat_decisions"`
	Propagations int64     `json:"sat_propagations"`
	Restarts     int64     `json:"sat_restarts"`
	Sizes        []sizeRow `json:"sizes"`
}

type report struct {
	Timeout string     `json:"timeout"`
	Benches []benchRow `json:"benches"`
}

func main() {
	var (
		out     = flag.String("o", "BENCH_pnr.json", "output report file")
		benches = flag.String("benches", "", "comma-separated benchmark names (default: all of Table 1)")
		maxArea = flag.Int("max-area", 0, "exact-engine area bound in tiles (0 = size-derived default)")
		budget  = flag.Int64("conflict-budget", 0, "per-SAT-call conflict budget (0 = engine default)")
		timeout = flag.Duration("timeout", 60*time.Second, "per-benchmark deadline; expired runs keep their partial per-size rows")
	)
	flag.Parse()

	names := bench.Names()
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}

	rep := report{Timeout: timeout.String()}
	failed := 0
	for _, name := range names {
		row := runBench(strings.TrimSpace(name), *maxArea, *budget, *timeout)
		if !row.OK {
			failed++
		}
		fmt.Printf("benchpnr: %-14s ok=%-5v %2dx%-2d sizes=%d (pruned %d) conflicts=%d %.2fs\n",
			row.Bench, row.OK, row.Width, row.Height, row.SizesTried, row.SizesPruned,
			row.Conflicts, row.TotalSeconds)
		rep.Benches = append(rep.Benches, row)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchpnr: wrote %s (%d benchmarks, %d failed)\n", *out, len(rep.Benches), failed)
	if failed == len(rep.Benches) {
		os.Exit(1) // nothing placed at all: the engine is broken, not slow
	}
}

func runBench(name string, maxArea int, budget int64, timeout time.Duration) benchRow {
	row := benchRow{Bench: name}
	x, err := bench.Load(name)
	if err != nil {
		row.Error = err.Error()
		return row
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	tr := obs.New()
	start := time.Now()
	lay, err := func() (*gatelayout.Layout, error) {
		rw := rewrite.Rewrite(x, rewrite.Options{})
		m, err := mapping.Map(rw)
		if err != nil {
			return nil, err
		}
		g, err := pnr.Expand(m)
		if err != nil {
			return nil, err
		}
		row.Gates = len(g.Nodes)
		opts := pnr.ExactOptions{MaxArea: maxArea, ConflictBudget: budget, Tracer: tr}
		return pnr.ExactContext(ctx, g, opts)
	}()
	row.TotalSeconds = time.Since(start).Seconds()
	if err != nil {
		row.Error = err.Error()
	} else {
		row.OK = true
		row.Width, row.Height = lay.Width(), lay.Height()
	}

	// Harvest the size-search rows and SAT totals from the trace; a
	// timed-out run still reports every size it finished.
	r := tr.Report(name)
	row.SizesTried = r.Counter("pnr/exact/sizes_tried")
	row.SizesPruned = r.Counter("pnr/exact/sizes_pruned")
	row.Conflicts = r.Counter("sat/conflicts")
	row.Decisions = r.Counter("sat/decisions")
	row.Propagations = r.Counter("sat/propagations")
	row.Restarts = r.Counter("sat/restarts")
	var walk func(ss []*obs.StageReport)
	walk = func(ss []*obs.StageReport) {
		for _, s := range ss {
			if s.Name == "pnr/exact/size" {
				row.Sizes = append(row.Sizes, sizeRowFrom(s))
			}
			walk(s.Children)
		}
	}
	walk(r.Stages)
	return row
}

func sizeRowFrom(s *obs.StageReport) sizeRow {
	sr := sizeRow{SpanSeconds: s.Seconds}
	sr.W = int(attrI(s, "w"))
	sr.H = int(attrI(s, "h"))
	if v, ok := s.Attrs["status"].(string); ok {
		sr.Status = v
	}
	if v, ok := s.Attrs["pruned"].(bool); ok {
		sr.Pruned = v
	}
	sr.Vars = attrI(s, "vars")
	sr.Clauses = attrI(s, "clauses")
	sr.Conflicts = attrI(s, "conflicts")
	sr.Decisions = attrI(s, "decisions")
	sr.Propagations = attrI(s, "propagations")
	sr.Restarts = attrI(s, "restarts")
	if v, ok := s.Attrs["solve_seconds"].(float64); ok {
		sr.SolveSeconds = v
	}
	return sr
}

// attrI coerces a numeric span attribute; in-process reports keep native
// int types, JSON round-trips turn them into float64.
func attrI(s *obs.StageReport, key string) int64 {
	switch v := s.Attrs[key].(type) {
	case int:
		return int64(v)
	case int64:
		return v
	case float64:
		return int64(v)
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchpnr:", err)
	os.Exit(1)
}
