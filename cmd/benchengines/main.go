// Command benchengines runs the ground-state engine bake-off: every
// library gate tile is validated against its truth table with each solver
// backend (exhaustive ExGS, pruned-exact QuickExact, simulated annealing),
// and BENCH_engines.json records accuracy versus time per engine — which
// backends get every tile right, which merely get them fast. Annealing is
// expected to be near-exact on library-sized tiles but carries no proof;
// the exact engines differ only in time.
//
//	go run ./cmd/benchengines
//	make bench-engines
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/gatelib"
	"repro/internal/sim"

	// Register the pruned exact ground-state backend.
	_ "repro/internal/sim/quickexact"
)

// tileRow is one engine x gate validation.
type tileRow struct {
	Engine   string  `json:"engine"`
	Gate     string  `json:"gate"`
	OK       bool    `json:"ok"`
	Method   string  `json:"method"`
	Dots     int     `json:"dots"`
	FreeDots int     `json:"free_dots"`
	MinGapEV float64 `json:"min_gap_ev,omitempty"`
	Seconds  float64 `json:"seconds"`
	Error    string  `json:"error,omitempty"`
}

// engineSummary is the accuracy-vs-time roll-up per backend.
type engineSummary struct {
	Engine       string  `json:"engine"`
	Tiles        int     `json:"tiles"`
	OKCount      int     `json:"ok_count"`
	Accuracy     float64 `json:"accuracy"`
	ExactShare   float64 `json:"exact_share"`
	TotalSeconds float64 `json:"total_seconds"`
	MeanSeconds  float64 `json:"mean_seconds"`
}

type report struct {
	Engines []engineSummary `json:"engines"`
	Tiles   []tileRow       `json:"tiles"`
}

func main() {
	var (
		out     = flag.String("o", "BENCH_engines.json", "output report file")
		solvers = flag.String("solvers", "exgs,quickexact,anneal", "comma-separated solver backends")
		gates   = flag.String("gates", "", "comma-separated gate variant keys (default: whole library)")
		limit   = flag.Int("limit", 0, "validate only the first N gates (0 = all; CI uses a reduced set)")
	)
	flag.Parse()

	lib := gatelib.NewLibrary()
	keys := lib.Variants()
	sort.Strings(keys)
	if *gates != "" {
		keys = strings.Split(*gates, ",")
	}
	if *limit > 0 && *limit < len(keys) {
		fmt.Fprintf(os.Stderr, "benchengines: limiting to first %d of %d gates\n", *limit, len(keys))
		keys = keys[:*limit]
	}

	var rep report
	failedEngines := 0
	for _, engine := range strings.Split(*solvers, ",") {
		engine = strings.TrimSpace(engine)
		sum := engineSummary{Engine: engine}
		exactCount := 0
		for _, key := range keys {
			row := runTile(lib, engine, key)
			sum.Tiles++
			sum.TotalSeconds += row.Seconds
			if row.OK {
				sum.OKCount++
			}
			if row.Method == "exgs" || row.Method == "quickexact" {
				exactCount++
			}
			rep.Tiles = append(rep.Tiles, row)
		}
		if sum.Tiles > 0 {
			sum.Accuracy = float64(sum.OKCount) / float64(sum.Tiles)
			sum.ExactShare = float64(exactCount) / float64(sum.Tiles)
			sum.MeanSeconds = sum.TotalSeconds / float64(sum.Tiles)
		}
		if sum.OKCount == 0 {
			failedEngines++
		}
		fmt.Printf("benchengines: %-10s %d/%d tiles ok (%.0f%% exact) in %.2fs (mean %.1fms)\n",
			engine, sum.OKCount, sum.Tiles, 100*sum.ExactShare, sum.TotalSeconds, 1e3*sum.MeanSeconds)
		rep.Engines = append(rep.Engines, sum)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchengines: wrote %s (%d engines x %d gates)\n", *out, len(rep.Engines), len(keys))
	if failedEngines == len(rep.Engines) {
		os.Exit(1) // no engine validated anything: broken, not just inaccurate
	}
}

func runTile(lib *gatelib.Library, engine, key string) tileRow {
	row := tileRow{Engine: engine, Gate: key}
	d, f, ok := lib.Design(key)
	if !ok {
		row.Error = fmt.Sprintf("unknown gate %q", key)
		return row
	}
	eng := sim.NewEngine(d.Layout(0, 0), sim.ParamsFig5)
	row.Dots = eng.NumDots()
	row.FreeDots = len(eng.FreeIndices())

	start := time.Now()
	v, err := gatelib.ValidateWith(d, gatelib.TruthOf(f), sim.ParamsFig5,
		gatelib.ValidateOptions{Solver: engine})
	row.Seconds = time.Since(start).Seconds()
	if err != nil {
		row.Error = err.Error()
		return row
	}
	row.OK = v.OK
	row.Method = v.Method
	row.MinGapEV = v.MinGapEV
	return row
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchengines:", err)
	os.Exit(1)
}
