// Command defectsweep runs the defect yield experiment: for each defect
// density it samples random surfaces (a mix of charged and neutral defect
// species after arXiv 2311.12042), validates every gate of the Bestagon
// library against each surface, optionally pushes small benchmarks through
// the whole defect-aware flow, and writes the yield-vs-density table to
// BENCH_defects.json.
//
//	go run ./cmd/defectsweep
//	make bench-defects
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/defects/sweep"
	"repro/internal/obs"
	_ "repro/internal/sim/quickexact" // register the pruned exact backend
)

type report struct {
	Densities []float64     `json:"densities_per_100nm2"`
	Seeds     int           `json:"seeds"`
	Seed      int64         `json:"seed"`
	Workers   int           `json:"workers"`
	Seconds   float64       `json:"seconds"`
	Result    *sweep.Result `json:"result"`
}

func main() {
	var (
		out       = flag.String("o", "BENCH_defects.json", "output report file")
		densities = flag.String("densities", "0.1,0.5,1.0,2.0", "comma-separated defect densities (per 100 nm²)")
		seeds     = flag.Int("seeds", 5, "random surfaces per (density, gate)")
		seed      = flag.Int64("seed", 1, "base random seed")
		workers   = flag.Int("workers", 0, "evaluation pool size (0 = GOMAXPROCS)")
		solver    = flag.String("solver", "", "ground-state solver (empty = automatic dispatch)")
		flows     = flag.String("flows", "xor2,mux21", "comma-separated benchmarks for whole-flow yield (empty disables)")
		timeout   = flag.Duration("timeout", 10*time.Minute, "overall deadline")
	)
	flag.Parse()

	dens, err := parseDensities(*densities)
	if err != nil {
		fatal(err)
	}
	var flowBenches []string
	if *flows != "" {
		for _, f := range strings.Split(*flows, ",") {
			if f = strings.TrimSpace(f); f != "" {
				flowBenches = append(flowBenches, f)
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	start := time.Now()
	res, err := sweep.Run(ctx, sweep.Config{
		Densities:   dens,
		Seeds:       *seeds,
		Seed:        *seed,
		Workers:     *workers,
		Solver:      *solver,
		FlowBenches: flowBenches,
		Tracer:      obs.New(),
	})
	if err != nil {
		fatal(err)
	}

	rep := report{
		Densities: dens,
		Seeds:     *seeds,
		Seed:      *seed,
		Workers:   *workers,
		Seconds:   time.Since(start).Seconds(),
		Result:    res,
	}
	for _, pt := range res.Points {
		fmt.Printf("defectsweep: density=%.2f/100nm² yield=%.3f (ok=%d blocked=%d failed=%d, mean defects %.1f)\n",
			pt.Density, pt.Yield, pt.OK, pt.Blocked, pt.Failed, pt.MeanDefects)
		for _, f := range pt.Flows {
			fmt.Printf("defectsweep:   flow %-8s yield=%.3f (ok=%d blocked=%d failed=%d)\n",
				f.Bench, f.Yield, f.OK, f.Blocked, f.Failed)
		}
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("defectsweep: wrote %s (%d densities x %d gates x %d seeds in %.1fs)\n",
		*out, len(dens), res.Gates, *seeds, rep.Seconds)
}

func parseDensities(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("invalid density %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no densities given")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "defectsweep:", err)
	os.Exit(1)
}
