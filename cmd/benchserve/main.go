// Command benchserve measures bestagond service latency end to end: it
// builds and boots the real daemon binary (or targets a running one via
// -addr), drives a mixed cold/warm workload of simulation and gate
// validation requests from concurrent clients, and writes
// BENCH_service.json with throughput, latency percentiles (p50/p90/p99),
// client-observed cache hit rate, and the server-side hit rate scraped
// from /metrics. It exits nonzero when any request fails, so CI catches
// service regressions, not just slowdowns.
//
//	go run ./cmd/benchserve
//	make bench-service
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

type latencyStats struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	MeanMS   float64 `json:"mean_ms"`
	P50MS    float64 `json:"p50_ms"`
	P90MS    float64 `json:"p90_ms"`
	P99MS    float64 `json:"p99_ms"`
	MaxMS    float64 `json:"max_ms"`
}

type benchReport struct {
	Clients       int          `json:"clients"`
	WallSeconds   float64      `json:"wall_seconds"`
	ThroughputRPS float64      `json:"throughput_rps"`
	Cold          latencyStats `json:"cold"`
	Warm          latencyStats `json:"warm"`
	CacheHits     int          `json:"cache_hits"`
	CacheMisses   int          `json:"cache_misses"`
	ClientHitRate float64      `json:"client_hit_rate"`
	// DegradedResponses counts 200s carrying X-Degraded: true — results the
	// deadline ladder produced with a cheaper engine. A healthy benchmark
	// run has zero; a loaded or mistuned one shows quality erosion here
	// before latency percentiles give it away.
	DegradedResponses int     `json:"degraded_responses"`
	DegradedRate      float64 `json:"degraded_rate"`
	ServerHitRate     float64 `json:"server_hit_rate"`
	WarmColdSpeedup   float64 `json:"warm_cold_speedup"`
	MetricsScrapeOK   bool    `json:"metrics_scrape_ok"`
	MetricsScrapeByte int     `json:"metrics_scrape_bytes"`
}

var base string

func main() {
	var (
		out      = flag.String("o", "BENCH_service.json", "output report file")
		addr     = flag.String("addr", "", "benchmark a running daemon at this address instead of spawning one")
		clients  = flag.Int("clients", 8, "concurrent client goroutines for the warm phase")
		rounds   = flag.Int("rounds", 5, "warm-phase passes over the gate set per client")
		workers  = flag.Int("workers", 4, "worker pool size for the spawned daemon")
		replicas = flag.Int("replicas", 1, "spawn a fleet of N clustered replicas and measure fleet-wide caching (see BENCH_fleet.json)")
	)
	flag.Parse()

	if *replicas > 1 {
		runFleet(*replicas, *clients, *rounds, *workers, *out)
		return
	}

	if *addr != "" {
		base = "http://" + *addr
	} else {
		stop := spawnDaemon(*workers)
		defer stop()
	}
	waitHealthy(30 * time.Second)

	gates := listGates()
	if len(gates) == 0 {
		fatal(fmt.Errorf("empty gate library"))
	}

	var rep benchReport
	rep.Clients = *clients

	// Cold phase: one sequential pass over every gate on both endpoints
	// populates the cache and measures uncached solve latency.
	var coldMS []float64
	var degraded int
	for _, path := range []string{"/v1/simulate", "/v1/gates/validate"} {
		for _, g := range gates {
			ms, _, deg, err := timedPost(path, map[string]any{"gate": g})
			if err != nil {
				fatal(fmt.Errorf("cold %s %s: %w", path, g, err))
			}
			if deg {
				degraded++
			}
			coldMS = append(coldMS, ms)
		}
	}
	rep.Cold = summarize(coldMS, 0)

	// Warm phase: concurrent clients hammer the now-populated cache with a
	// simulate/validate mix; most responses should be cache hits.
	start := time.Now()
	var mu sync.Mutex
	var warmMS []float64
	var hits, misses, errs int
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < *rounds; r++ {
				for i, g := range gates {
					path := "/v1/simulate"
					if (c+r+i)%3 == 0 {
						path = "/v1/gates/validate"
					}
					ms, hit, deg, err := timedPost(path, map[string]any{"gate": g})
					mu.Lock()
					if err != nil {
						errs++
					} else {
						warmMS = append(warmMS, ms)
						if hit {
							hits++
						} else {
							misses++
						}
						if deg {
							degraded++
						}
					}
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	rep.WallSeconds = time.Since(start).Seconds()
	rep.Warm = summarize(warmMS, errs)
	rep.CacheHits = hits
	rep.CacheMisses = misses
	if total := hits + misses; total > 0 {
		rep.ClientHitRate = float64(hits) / float64(total)
		rep.ThroughputRPS = float64(total) / rep.WallSeconds
	}
	if rep.Warm.MeanMS > 0 {
		rep.WarmColdSpeedup = rep.Cold.MeanMS / rep.Warm.MeanMS
	}
	rep.DegradedResponses = degraded
	if total := rep.Cold.Requests + rep.Warm.Requests; total > 0 {
		rep.DegradedRate = float64(degraded) / float64(total)
	}

	// Validate the Prometheus endpoint while we are here: the scrape must
	// be well-formed and carry the server-side cache hit rate.
	metrics, err := rawGet("/metrics")
	if err != nil {
		fatal(fmt.Errorf("scrape /metrics: %w", err))
	}
	rep.MetricsScrapeByte = len(metrics)
	rep.MetricsScrapeOK = strings.Contains(metrics, "# TYPE http_request_duration_seconds histogram") &&
		strings.Contains(metrics, `le="+Inf"`)
	if v, ok := scrapeValue(metrics, "cache_mem_hit_rate"); ok {
		rep.ServerHitRate = v
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchserve: cold %d reqs: p50 %.2fms p99 %.2fms\n",
		rep.Cold.Requests, rep.Cold.P50MS, rep.Cold.P99MS)
	fmt.Printf("benchserve: warm %d reqs x %d clients: %.0f req/s, p50 %.2fms p90 %.2fms p99 %.2fms\n",
		rep.Warm.Requests, rep.Clients, rep.ThroughputRPS, rep.Warm.P50MS, rep.Warm.P90MS, rep.Warm.P99MS)
	fmt.Printf("benchserve: cache hit rate %.0f%% (server %.0f%%), wrote %s\n",
		100*rep.ClientHitRate, 100*rep.ServerHitRate, *out)
	if rep.DegradedResponses > 0 {
		fmt.Fprintf(os.Stderr, "benchserve: warning: %d degraded responses (%.1f%%)\n",
			rep.DegradedResponses, 100*rep.DegradedRate)
	}
	if errs > 0 || !rep.MetricsScrapeOK {
		fmt.Fprintf(os.Stderr, "benchserve: FAIL: %d request errors, metrics ok=%v\n", errs, rep.MetricsScrapeOK)
		os.Exit(1)
	}
}

// spawnDaemon builds and boots bestagond on an ephemeral port, returning
// a function that terminates it.
func spawnDaemon(workers int) func() {
	tmp, err := os.MkdirTemp("", "benchserve-*")
	if err != nil {
		fatal(err)
	}
	bin := filepath.Join(tmp, "bestagond")
	build := exec.Command("go", "build", "-o", bin, "./cmd/bestagond")
	build.Stdout, build.Stderr = os.Stderr, os.Stderr
	if err := build.Run(); err != nil {
		os.RemoveAll(tmp)
		fatal(fmt.Errorf("build: %w", err))
	}
	addr := freeAddr()
	base = "http://" + addr
	daemon := exec.Command(bin,
		"-addr", addr,
		"-workers", strconv.Itoa(workers),
		"-log-level", "warn",
	)
	daemon.Stdout, daemon.Stderr = os.Stderr, os.Stderr
	if err := daemon.Start(); err != nil {
		os.RemoveAll(tmp)
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchserve: daemon on %s (%d workers)\n", addr, workers)
	return func() {
		daemon.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { daemon.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			daemon.Process.Kill()
		}
		os.RemoveAll(tmp)
	}
}

func summarize(ms []float64, errs int) latencyStats {
	st := latencyStats{Requests: len(ms), Errors: errs}
	if len(ms) == 0 {
		return st
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	st.MeanMS = sum / float64(len(sorted))
	st.P50MS = percentile(sorted, 0.50)
	st.P90MS = percentile(sorted, 0.90)
	st.P99MS = percentile(sorted, 0.99)
	st.MaxMS = sorted[len(sorted)-1]
	return st
}

// percentile is the nearest-rank percentile of an ascending-sorted slice.
func percentile(sorted []float64, q float64) float64 {
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// scrapeValue extracts a single unlabeled gauge/counter sample value.
func scrapeValue(exposition, family string) (float64, bool) {
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, family+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(line[len(family)+1:]), 64)
			return v, err == nil
		}
	}
	return 0, false
}

func freeAddr() string {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(timeout time.Duration) { waitHealthyAt(base, timeout) }

func waitHealthyAt(target string, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(target + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	fatal(fmt.Errorf("daemon never became healthy at %s", target))
}

func listGates() []string { return listGatesAt(base) }

func listGatesAt(target string) []string {
	resp, err := http.Get(target + "/v1/gates")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Gates []string `json:"gates"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		fatal(err)
	}
	return out.Gates
}

// timedPost sends a JSON request and returns (elapsed ms, cache hit,
// degraded result).
func timedPost(path string, payload any) (float64, bool, bool, error) {
	return timedPostTo(base, path, payload)
}

func timedPostTo(target, path string, payload any) (float64, bool, bool, error) {
	b, err := json.Marshal(payload)
	if err != nil {
		return 0, false, false, err
	}
	start := time.Now()
	resp, err := http.Post(target+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, false, false, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	elapsed := float64(time.Since(start)) / float64(time.Millisecond)
	if resp.StatusCode != http.StatusOK {
		return elapsed, false, false, fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(body))
	}
	return elapsed, resp.Header.Get("X-Cache") == "hit", resp.Header.Get("X-Degraded") == "true", nil
}

func rawGet(path string) (string, error) { return rawGetFrom(base, path) }

func rawGetFrom(target, path string) (string, error) {
	resp, err := http.Get(target + path)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	return string(b), nil
}

// scrapeSum sums every sample of a metric family across its label sets.
func scrapeSum(exposition, family string) float64 {
	var sum float64
	for _, line := range strings.Split(exposition, "\n") {
		var rest string
		switch {
		case strings.HasPrefix(line, family+" "):
			rest = line[len(family)+1:]
		case strings.HasPrefix(line, family+"{"):
			i := strings.LastIndex(line, "} ")
			if i < 0 {
				continue
			}
			rest = line[i+2:]
		default:
			continue
		}
		if v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err == nil {
			sum += v
		}
	}
	return sum
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchserve:", err)
	os.Exit(1)
}
