package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Fleet mode (-replicas N) boots N mutually-peered bestagond replicas and
// measures what the cluster layer buys: a concurrent cold storm of
// identical requests sprayed round-robin across replicas should collapse
// onto roughly one solve per unique key (consistent-hash ownership plus
// fleet-wide single-flight), and the warm fleet-wide hit rate should
// match a standalone replica's. The report lands in BENCH_fleet.json and
// the process exits nonzero when either property fails, so CI catches
// cluster regressions the single-replica benchmark cannot see.

type fleetReport struct {
	Replicas   int `json:"replicas"`
	Clients    int `json:"clients"`
	Gates      int `json:"gates"`
	UniqueKeys int `json:"unique_keys"`

	// ColdStorm is the latency of clients concurrently requesting the same
	// uncached key set against different replicas.
	ColdStorm latencyStats `json:"cold_storm"`
	// ColdSolves sums jobs_cold_solves_total across replicas over the whole
	// run: the number of times any replica actually ran a solver. Perfect
	// deduplication makes this equal UniqueKeys.
	ColdSolves         int     `json:"cold_solves"`
	DuplicateRatio     float64 `json:"duplicate_ratio"`
	SingleflightMerged int     `json:"singleflight_merged"`
	ForwardedRequests  int     `json:"forwarded_requests"`
	PeerCacheRequests  int     `json:"peer_cache_requests"`

	Warm          latencyStats `json:"warm"`
	WallSeconds   float64      `json:"wall_seconds"`
	ThroughputRPS float64      `json:"throughput_rps"`
	// FleetHitRate is the client-observed hit rate of the warm phase across
	// the whole fleet; SingleReplicaHitRate is the same workload against
	// one standalone replica, the bar the fleet must clear.
	FleetHitRate         float64 `json:"fleet_hit_rate"`
	SingleReplicaHitRate float64 `json:"single_replica_hit_rate"`
	PerReplicaColdSolves []int   `json:"per_replica_cold_solves"`
	// PerReplica breaks the fleet totals down by member, so a skewed ring
	// (one replica owning most keys) or a replica serving cold from a sick
	// cache shows up in the report instead of hiding in the sums.
	PerReplica []replicaBench `json:"per_replica"`
}

// replicaBench is one replica's slice of the fleet benchmark.
type replicaBench struct {
	Addr              string  `json:"addr"`
	ColdSolves        int     `json:"cold_solves"`
	MemHitRate        float64 `json:"mem_hit_rate"`
	Forwarded         int     `json:"forwarded"`
	PeerCacheRequests int     `json:"peer_cache_requests"`
}

// benchOp is one request of the benchmark workload; the full workload is
// every gate on both compute endpoints.
type benchOp struct {
	path string
	gate string
}

func runFleet(n, clients, rounds, workers int, out string) {
	// The storm needs enough concurrent clients that every replica sees
	// simultaneous requests for the same keys.
	if clients < 3*n {
		clients = 3 * n
	}

	bin, cleanup := buildDaemonBinary()
	defer cleanup()

	const secret = "benchserve-fleet"
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = freeAddr()
	}
	procs := make([]*exec.Cmd, n)
	for i, a := range addrs {
		var peers []string
		for j, p := range addrs {
			if j != i {
				peers = append(peers, p)
			}
		}
		procs[i] = startReplica(bin, a,
			"-workers", strconv.Itoa(workers),
			"-peers", strings.Join(peers, ","),
			"-cluster-secret", secret,
			"-probe-interval", "200ms",
		)
	}
	defer func() {
		for _, p := range procs {
			stopReplica(p)
		}
	}()

	targets := make([]string, n)
	for i, a := range addrs {
		targets[i] = "http://" + a
		waitHealthyAt(targets[i], 30*time.Second)
	}
	waitFleetFormed(targets, n, 15*time.Second)
	fmt.Fprintf(os.Stderr, "benchserve: fleet of %d replicas formed (%s)\n", n, strings.Join(addrs, ", "))

	gates := listGatesAt(targets[0])
	if len(gates) == 0 {
		fatal(fmt.Errorf("empty gate library"))
	}
	ops := buildOps(gates)

	var rep fleetReport
	rep.Replicas = n
	rep.Clients = clients
	rep.Gates = len(gates)
	rep.UniqueKeys = len(ops)

	// Cold storm: every client walks the same op list concurrently, each
	// starting against a different replica, so identical cold requests hit
	// the fleet from all sides at once.
	storm := runPhase(targets, ops, clients, 1)
	rep.ColdStorm = summarize(storm.ms, storm.errs)

	// Warm phase: the whole key set is now owned somewhere in the fleet;
	// every request should be answered from cache, locally or via the
	// owner replica.
	warmStart := time.Now()
	warm := runPhase(targets, ops, clients, rounds)
	rep.WallSeconds = time.Since(warmStart).Seconds()
	rep.Warm = summarize(warm.ms, warm.errs)
	if total := warm.hits + warm.misses; total > 0 {
		rep.FleetHitRate = float64(warm.hits) / float64(total)
		rep.ThroughputRPS = float64(total) / rep.WallSeconds
	}

	// Scrape every replica once, after both phases: cold solves are
	// cumulative, so any warm-phase re-solve (a dedup failure) counts
	// against the duplicate ratio too.
	var coldSolves, merged, forwarded, peerReqs float64
	for i, t := range targets {
		m, err := rawGetFrom(t, "/metrics")
		if err != nil {
			fatal(fmt.Errorf("scrape %s/metrics: %w", t, err))
		}
		cs := scrapeSum(m, "jobs_cold_solves_total")
		hr, _ := scrapeValue(m, "cache_mem_hit_rate")
		fw := scrapeSum(m, "cluster_forwarded_total")
		pr := scrapeSum(m, "cluster_peer_requests_total")
		rep.PerReplicaColdSolves = append(rep.PerReplicaColdSolves, int(cs))
		rep.PerReplica = append(rep.PerReplica, replicaBench{
			Addr:              addrs[i],
			ColdSolves:        int(cs),
			MemHitRate:        hr,
			Forwarded:         int(fw),
			PeerCacheRequests: int(pr),
		})
		coldSolves += cs
		merged += scrapeSum(m, "cluster_singleflight_merged_total")
		forwarded += fw
		peerReqs += pr
	}
	rep.ColdSolves = int(coldSolves)
	if rep.UniqueKeys > 0 {
		rep.DuplicateRatio = coldSolves / float64(rep.UniqueKeys)
	}
	rep.SingleflightMerged = int(merged)
	rep.ForwardedRequests = int(forwarded)
	rep.PeerCacheRequests = int(peerReqs)

	// Baseline: the same workload against one standalone replica sets the
	// hit-rate bar the fleet must not fall below.
	rep.SingleReplicaHitRate = singleReplicaBaseline(bin, workers, ops, clients, rounds)

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}

	fmt.Printf("benchserve: fleet cold storm %d reqs x %d clients: p50 %.2fms p99 %.2fms\n",
		rep.ColdStorm.Requests, clients, rep.ColdStorm.P50MS, rep.ColdStorm.P99MS)
	fmt.Printf("benchserve: fleet cold solves %d for %d unique keys (ratio %.2f), singleflight merged %d, forwarded %d\n",
		rep.ColdSolves, rep.UniqueKeys, rep.DuplicateRatio, rep.SingleflightMerged, rep.ForwardedRequests)
	fmt.Printf("benchserve: fleet warm %d reqs: %.0f req/s, p50 %.2fms p99 %.2fms, hit rate %.0f%% (standalone %.0f%%)\n",
		rep.Warm.Requests, rep.ThroughputRPS, rep.Warm.P50MS, rep.Warm.P99MS,
		100*rep.FleetHitRate, 100*rep.SingleReplicaHitRate)
	for _, rb := range rep.PerReplica {
		fmt.Printf("benchserve:   replica %s: %d cold solves, mem hit rate %.0f%%, forwarded %d, peer ops %d\n",
			rb.Addr, rb.ColdSolves, 100*rb.MemHitRate, rb.Forwarded, rb.PeerCacheRequests)
	}
	fmt.Printf("benchserve: wrote %s\n", out)

	var failures []string
	if storm.errs > 0 || warm.errs > 0 {
		failures = append(failures, fmt.Sprintf("%d request errors", storm.errs+warm.errs))
	}
	// Timing skew means a handful of stragglers can legitimately re-solve a
	// key (the first solve finished and was evicted, or raced the peer
	// publish), so the bound is "about one solve per key", not exactly one.
	if rep.DuplicateRatio > 1.5 {
		failures = append(failures, fmt.Sprintf("duplicate ratio %.2f > 1.5: fleet single-flight not deduplicating", rep.DuplicateRatio))
	}
	if rep.FleetHitRate < rep.SingleReplicaHitRate-0.05 {
		failures = append(failures, fmt.Sprintf("fleet hit rate %.2f below standalone %.2f", rep.FleetHitRate, rep.SingleReplicaHitRate))
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchserve: FAIL: %s\n", strings.Join(failures, "; "))
		os.Exit(1)
	}
}

func buildOps(gates []string) []benchOp {
	var ops []benchOp
	for _, path := range []string{"/v1/simulate", "/v1/gates/validate"} {
		for _, g := range gates {
			ops = append(ops, benchOp{path: path, gate: g})
		}
	}
	return ops
}

type phaseResult struct {
	ms           []float64
	hits, misses int
	errs         int
}

// runPhase drives clients concurrent workers, each making `rounds` passes
// over the op list, spraying requests round-robin across targets. Client
// c's requests start at target c%len(targets) so the same op lands on
// different replicas for different clients.
func runPhase(targets []string, ops []benchOp, clients, rounds int) phaseResult {
	var mu sync.Mutex
	var res phaseResult
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i, op := range ops {
					t := targets[(c+i)%len(targets)]
					ms, hit, _, err := timedPostTo(t, op.path, map[string]any{"gate": op.gate})
					mu.Lock()
					if err != nil {
						res.errs++
						fmt.Fprintf(os.Stderr, "benchserve: fleet request failed: %v\n", err)
					} else {
						res.ms = append(res.ms, ms)
						if hit {
							res.hits++
						} else {
							res.misses++
						}
					}
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	return res
}

// singleReplicaBaseline measures the warm hit rate of the identical
// workload against one standalone (clusterless) replica.
func singleReplicaBaseline(bin string, workers int, ops []benchOp, clients, rounds int) float64 {
	addr := freeAddr()
	proc := startReplica(bin, addr, "-workers", strconv.Itoa(workers))
	defer stopReplica(proc)
	target := "http://" + addr
	waitHealthyAt(target, 30*time.Second)

	// Sequential cold pass, then the same warm phase the fleet ran.
	for _, op := range ops {
		if _, _, _, err := timedPostTo(target, op.path, map[string]any{"gate": op.gate}); err != nil {
			fatal(fmt.Errorf("baseline cold %s %s: %w", op.path, op.gate, err))
		}
	}
	warm := runPhase([]string{target}, ops, clients, rounds)
	if total := warm.hits + warm.misses; total > 0 {
		return float64(warm.hits) / float64(total)
	}
	return 0
}

// waitFleetFormed blocks until every replica reports a full ring with all
// peers alive, so the storm measures a formed cluster, not a forming one.
func waitFleetFormed(targets []string, n int, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		formed := 0
		for _, t := range targets {
			body, err := rawGetFrom(t, "/healthz")
			if err != nil {
				break
			}
			var h struct {
				Cluster struct {
					RingMembers int `json:"ring_members"`
					Members     []struct {
						Alive bool `json:"alive"`
					} `json:"members"`
				} `json:"cluster"`
			}
			if json.Unmarshal([]byte(body), &h) != nil || h.Cluster.RingMembers != n {
				break
			}
			alive := true
			for _, m := range h.Cluster.Members {
				alive = alive && m.Alive
			}
			if !alive {
				break
			}
			formed++
		}
		if formed == len(targets) {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	fatal(fmt.Errorf("fleet never formed a full ring of %d within %s", n, timeout))
}

// buildDaemonBinary compiles bestagond once into a temp dir so fleet mode
// can boot many replicas from the same binary.
func buildDaemonBinary() (string, func()) {
	tmp, err := os.MkdirTemp("", "benchserve-fleet-*")
	if err != nil {
		fatal(err)
	}
	bin := filepath.Join(tmp, "bestagond")
	build := exec.Command("go", "build", "-o", bin, "./cmd/bestagond")
	build.Stdout, build.Stderr = os.Stderr, os.Stderr
	if err := build.Run(); err != nil {
		os.RemoveAll(tmp)
		fatal(fmt.Errorf("build: %w", err))
	}
	return bin, func() { os.RemoveAll(tmp) }
}

func startReplica(bin, addr string, extra ...string) *exec.Cmd {
	args := append([]string{"-addr", addr, "-log-level", "warn"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		fatal(err)
	}
	return cmd
}

func stopReplica(cmd *exec.Cmd) {
	if cmd == nil || cmd.Process == nil {
		return
	}
	cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
	}
}
