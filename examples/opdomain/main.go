// Opdomain: map the operational domain of a Bestagon tile across physical
// parameters (μ_, ε_r) — the evaluation framework the paper's conclusions
// call for. The wire tile is swept around the library calibration point
// and the operational region is rendered as an ASCII map.
package main

import (
	"log"
	"os"

	"repro/internal/figures"
	"repro/internal/gates"
)

func main() {
	if err := figures.OpDomain(os.Stdout, gates.Wire); err != nil {
		log.Fatal(err)
	}
}
