// Customlib: derive a new gate core with the simulation-driven design
// search (the paper's RL-agent substitute) and validate it — the workflow
// for extending the Bestagon library with additional Boolean functions,
// which the paper names as a possibility ("it is also possible to create a
// variety of gate libraries following the provided specifications").
package main

import (
	"fmt"
	"log"

	"repro/internal/designer"
	"repro/internal/gatelib"
	"repro/internal/sim"
)

func main() {
	// Target: a 2-input "A AND NOT B" (inhibition) tile — a function the
	// standard library does not provide.
	inhibition := func(in uint32) uint32 {
		a, b := in&1, in>>1&1
		return a &^ b
	}

	tpl := gatelib.SearchTemplate(2, false, true, inhibition, sim.ParamsFig5)
	cands := designer.Grid(20, 12, 40, 32, 2, tpl.Fixed, 0.6)
	fmt.Printf("searching %d candidate canvas sites...\n", len(cands))

	opts := designer.DefaultOptions()
	opts.Restarts = 8
	opts.Iterations = 250
	best, err := designer.Search(tpl, cands, opts)
	if err != nil {
		log.Fatalf("no design found: %v", err)
	}

	fmt.Printf("found a placement with %d canvas dots (output gap %.4f eV):\n",
		len(best.Canvas), best.MinGap)
	for _, s := range best.Canvas {
		x, y := s.Cell()
		fmt.Printf("  dot at cell (%d, %d)\n", x, y)
	}

	// Re-validate the candidate from scratch.
	check := designer.Evaluate(tpl, best.Canvas)
	fmt.Printf("re-validation: %d/%d input patterns correct\n", check.Correct, check.Patterns)
	if !check.Works() {
		log.Fatal("validation failed")
	}
	fmt.Println("the core can now be embedded in a tile design (see internal/gatelib/designs.go)")
}
