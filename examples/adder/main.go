// Adder: build a 2-bit ripple-carry adder as an XAG with the public
// network API, push it through the design flow, and report the layout.
// This is the kind of workload the paper's Table 1 cm82a_5 row measures.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/logic/network"
)

func main() {
	x := network.New()
	x.Name = "rca2"

	a0, a1 := x.NewPI("a0"), x.NewPI("a1")
	b0, b1 := x.NewPI("b0"), x.NewPI("b1")
	cin := x.NewPI("cin")

	// Full adder 0.
	s0 := x.Xor(x.Xor(a0, b0), cin)
	c0 := x.Maj(a0, b0, cin)
	// Full adder 1.
	s1 := x.Xor(x.Xor(a1, b1), c0)
	cout := x.Maj(a1, b1, c0)

	x.NewPO(s0, "s0")
	x.NewPO(s1, "s1")
	x.NewPO(cout, "cout")

	res, err := core.Run(x, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("adder:", res.Rewritten)
	fmt.Println("mapped:", res.Mapped)
	fmt.Printf("layout %dx%d tiles (%.2f nm2), %d SiDBs, engine %s, verified %v\n",
		res.Layout.Width(), res.Layout.Height(), res.AreaNM2,
		res.SiDBs, res.EngineUsed, res.Verification.Equivalent)
	fmt.Println()
	fmt.Println(res.Layout.Render())

	// Spot-check the layout against the arithmetic truth.
	for in := uint32(0); in < 32; in++ {
		a := in&1 | (in>>1&1)<<1
		b := in>>2&1 | (in>>3&1)<<1
		ci := in >> 4 & 1
		sum := a + b + ci
		out := res.Layout.Simulate(in)
		got := out&1 | (out>>1&1)<<1 | (out>>2&1)<<2
		if got != sum {
			log.Fatalf("layout disagrees at a=%d b=%d cin=%d: got %d, want %d", a, b, ci, got, sum)
		}
	}
	fmt.Println("layout arithmetic verified for all 32 input combinations")
}
