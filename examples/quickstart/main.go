// Quickstart: run the complete Bestagon design flow on a built-in
// benchmark and print the resulting hexagonal layout.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// Run all eight flow steps on the mux21 benchmark: rewriting,
	// technology mapping, exact placement & routing on the hexagonal
	// row-clocked floor plan, SAT verification, super-tile merging, and
	// gate-library application.
	res, err := core.RunBenchmark("mux21", core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("specification:", res.Spec)
	fmt.Println("after rewriting:", res.Rewritten)
	fmt.Println("mapped:", res.Mapped)
	fmt.Printf("layout: %v (engine: %s)\n", res.Layout, res.EngineUsed)
	fmt.Printf("formally verified: %v\n", res.Verification.Equivalent)
	fmt.Printf("SiDBs: %d, area: %.2f nm2\n\n", res.SiDBs, res.AreaNM2)
	fmt.Println(res.Layout.Render())

	// Export the dot-accurate layout for SiQAD.
	doc, err := res.ExportSQD()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SiQAD design file: %d bytes (use res.ExportSQD to save)\n", len(doc))
}
