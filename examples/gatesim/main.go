// Gatesim: simulate a single Bestagon gate tile standalone, the way the
// paper's Fig. 5 validates the library — toggle through the input
// combinations with position-modulated perturbers and find the charge
// ground state for each.
package main

import (
	"fmt"
	"log"

	"repro/internal/gatelib"
	"repro/internal/gates"
	"repro/internal/hexgrid"
	"repro/internal/sidb"
	"repro/internal/sim"
)

func main() {
	lib := gatelib.NewLibrary()
	design, err := lib.Get(gates.And,
		[]hexgrid.Direction{hexgrid.NorthWest, hexgrid.NorthEast},
		[]hexgrid.Direction{hexgrid.SouthEast})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AND tile: %d dots (%d BDL pairs, %d canvas dots)\n\n",
		design.NumDots(), len(design.Pairs), len(design.Extra))

	for pattern := uint32(0); pattern < 4; pattern++ {
		// Build the standalone validation layout: the tile plus I/O
		// perturbers encoding the input pattern (near = 1, far = 0).
		l := design.Layout(0, 0)
		for i, in := range design.Ins {
			for _, site := range gatelib.InputEmulation(in, pattern>>i&1 == 1) {
				l.Add(site, sidb.RolePerturber)
			}
		}
		for _, out := range design.Outs {
			l.Add(gatelib.OutputPerturber(out), sidb.RolePerturber)
		}

		eng := sim.NewEngine(l, sim.ParamsFig5)
		gs, energy := eng.GroundState()

		idx := l.SiteIndex()
		state, err := design.Outs[0].BDL().State(idx, gs)
		if err != nil {
			log.Fatalf("pattern %02b: %v", pattern, err)
		}
		fmt.Printf("a=%d b=%d  ->  out=%v   (E = %.4f eV, population stable: %v)\n",
			pattern&1, pattern>>1&1, b2i(state), energy, eng.PopulationStable(gs))
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
